// Hamming SEC / extended-Hamming SEC-DED tests, including the exhaustive
// miscorrection behaviour the paper's motivation rests on.
#include <gtest/gtest.h>

#include "hamming/hamming.hpp"
#include "util/rng.hpp"

namespace pair_ecc::hamming {
namespace {

using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

class HammingParamTest
    : public ::testing::TestWithParam<std::pair<unsigned, bool>> {
 protected:
  HammingParamTest() : code_(GetParam().first, GetParam().second) {}
  HammingCode code_;
};

TEST_P(HammingParamTest, CodewordSizeIsMinimal) {
  // n = k + p (+1 if extended) with p minimal s.t. 2^p >= k + p + 1.
  const unsigned k = code_.k();
  unsigned p = 1;
  while ((1u << p) < k + p + 1) ++p;
  EXPECT_EQ(code_.n(), k + p + (code_.extended() ? 1 : 0));
}

TEST_P(HammingParamTest, EncodeYieldsCodeword) {
  Xoshiro256 rng(50);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec data = BitVec::Random(code_.k(), rng);
    const BitVec cw = code_.Encode(data);
    EXPECT_TRUE(code_.IsCodeword(cw));
    EXPECT_EQ(code_.ExtractData(cw), data);
  }
}

TEST_P(HammingParamTest, CleanDecodeReportsNoError) {
  Xoshiro256 rng(51);
  BitVec cw = code_.Encode(BitVec::Random(code_.k(), rng));
  const auto res = code_.Decode(cw);
  EXPECT_EQ(res.status, HammingStatus::kNoError);
}

TEST_P(HammingParamTest, EverySingleBitErrorIsCorrected) {
  Xoshiro256 rng(52);
  const BitVec data = BitVec::Random(code_.k(), rng);
  const BitVec clean = code_.Encode(data);
  for (unsigned bit = 0; bit < code_.n(); ++bit) {
    BitVec word = clean;
    word.Flip(bit);
    const auto res = code_.Decode(word);
    ASSERT_EQ(res.status, HammingStatus::kCorrected) << "bit " << bit;
    EXPECT_EQ(res.corrected_bit, bit);
    EXPECT_EQ(word, clean);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HammingParamTest,
    ::testing::Values(std::make_pair(128u, false),  // on-die (136,128) SEC
                      std::make_pair(64u, true),    // rank (72,64) SEC-DED
                      std::make_pair(64u, false),
                      std::make_pair(32u, false),
                      std::make_pair(16u, true),
                      std::make_pair(8u, false),
                      std::make_pair(4u, true),
                      std::make_pair(1u, false)));

TEST(HammingCode, OnDie136HasExpectedGeometry) {
  const auto code = HammingCode::OnDie136();
  EXPECT_EQ(code.k(), 128u);
  EXPECT_EQ(code.n(), 136u);
  EXPECT_EQ(code.ParityBits(), 8u);
  EXPECT_DOUBLE_EQ(code.Overhead(), 0.0625);
}

TEST(HammingCode, SecDed72HasExpectedGeometry) {
  const auto code = HammingCode::SecDed72();
  EXPECT_EQ(code.k(), 64u);
  EXPECT_EQ(code.n(), 72u);
  EXPECT_EQ(code.ParityBits(), 8u);
}

TEST(HammingCode, RejectsZeroK) {
  EXPECT_THROW(HammingCode(0), std::invalid_argument);
}

TEST(HammingCode, RejectsWrongLengths) {
  const auto code = HammingCode::SecDed72();
  BitVec wrong(10);
  EXPECT_THROW(code.Encode(wrong), std::invalid_argument);
  EXPECT_THROW(code.Decode(wrong), std::invalid_argument);
  EXPECT_THROW(code.ExtractData(wrong), std::invalid_argument);
}

// --------------------------------------------------- double-error behaviour

TEST(HammingSec, DoubleErrorsMiscorrectOrDetect_Exhaustive) {
  // For the plain SEC on-die code, every double error must be either
  // miscorrected (reported kCorrected, word now differs from clean in three
  // bits) or detected — never reported clean.
  const auto code = HammingCode::OnDie136();
  Xoshiro256 rng(60);
  const BitVec clean = code.Encode(BitVec::Random(code.k(), rng));
  std::uint64_t miscorrected = 0, detected = 0;
  for (unsigned i = 0; i < code.n(); ++i) {
    for (unsigned j = i + 1; j < code.n(); ++j) {
      BitVec word = clean;
      word.Flip(i);
      word.Flip(j);
      const auto res = code.Decode(word);
      ASSERT_NE(res.status, HammingStatus::kNoError) << i << "," << j;
      if (res.status == HammingStatus::kCorrected) {
        ++miscorrected;
        // Miscorrection adds a third wrong bit (word is a codeword again
        // but not the right one).
        EXPECT_TRUE(code.IsCodeword(word));
        EXPECT_NE(word, clean);
      } else {
        ++detected;
      }
    }
  }
  // The (136,128) SEC code miscorrects the large majority of double errors —
  // the behaviour PAIR's motivation quantifies.
  const double rate = static_cast<double>(miscorrected) /
                      static_cast<double>(miscorrected + detected);
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 1.0);
  EXPECT_NEAR(rate, code.DoubleErrorMiscorrectionRate(), 1e-12);
}

TEST(HammingSecDed, AllDoubleErrorsDetected_Exhaustive) {
  const auto code = HammingCode::SecDed72();
  Xoshiro256 rng(61);
  const BitVec clean = code.Encode(BitVec::Random(code.k(), rng));
  for (unsigned i = 0; i < code.n(); ++i) {
    for (unsigned j = i + 1; j < code.n(); ++j) {
      BitVec word = clean;
      word.Flip(i);
      word.Flip(j);
      const auto res = code.Decode(word);
      EXPECT_EQ(res.status, HammingStatus::kDetected) << i << "," << j;
      // Word untouched on detection.
      BitVec expect = clean;
      expect.Flip(i);
      expect.Flip(j);
      EXPECT_EQ(word, expect);
    }
  }
  EXPECT_EQ(code.DoubleErrorMiscorrectionRate(), 0.0);
}

TEST(HammingSecDed, TripleErrorsOftenMiscorrect) {
  // SEC-DED guarantees stop at 2 errors: odd-weight >= 3 patterns look like
  // single errors. Verify the codec exhibits (rather than hides) this.
  const auto code = HammingCode::SecDed72();
  Xoshiro256 rng(62);
  const BitVec clean = code.Encode(BitVec::Random(code.k(), rng));
  int miscorrected = 0, total = 0;
  for (int trial = 0; trial < 500; ++trial) {
    BitVec word = clean;
    // Three distinct bits.
    unsigned a = static_cast<unsigned>(rng.UniformBelow(code.n())), b, c;
    do { b = static_cast<unsigned>(rng.UniformBelow(code.n())); } while (b == a);
    do { c = static_cast<unsigned>(rng.UniformBelow(code.n())); } while (c == a || c == b);
    word.Flip(a); word.Flip(b); word.Flip(c);
    const auto res = code.Decode(word);
    ++total;
    if (res.status == HammingStatus::kCorrected && word != clean) ++miscorrected;
  }
  EXPECT_GT(miscorrected, total / 2);
}

TEST(HammingSec, ParityBitErrorsAreCorrectedToo) {
  const auto code = HammingCode::OnDie136();
  Xoshiro256 rng(63);
  const BitVec data = BitVec::Random(code.k(), rng);
  const BitVec clean = code.Encode(data);
  for (unsigned j = code.k(); j < code.n(); ++j) {
    BitVec word = clean;
    word.Flip(j);
    const auto res = code.Decode(word);
    EXPECT_EQ(res.status, HammingStatus::kCorrected);
    EXPECT_EQ(code.ExtractData(word), data);
  }
}

TEST(HammingCode, MiscorrectionRateMatchesCountingArgument) {
  // Independent check for a small code where we can reason by hand:
  // Hamming (7,4): positions 1..7; every XOR of two distinct positions is a
  // valid position, so ALL double errors miscorrect.
  const HammingCode code(4, false);
  EXPECT_EQ(code.n(), 7u);
  EXPECT_DOUBLE_EQ(code.DoubleErrorMiscorrectionRate(), 1.0);
}

TEST(HammingCode, AllZerosAndAllOnesDataRoundTrip) {
  const auto code = HammingCode::OnDie136();
  BitVec zeros(code.k());
  BitVec cw = code.Encode(zeros);
  EXPECT_EQ(code.Decode(cw).status, HammingStatus::kNoError);

  BitVec ones(code.k());
  for (unsigned i = 0; i < code.k(); ++i) ones.Set(i, true);
  cw = code.Encode(ones);
  EXPECT_EQ(code.Decode(cw).status, HammingStatus::kNoError);
  EXPECT_EQ(code.ExtractData(cw), ones);
}

TEST(HammingSecDed, OverallParityBitErrorIsCorrected) {
  const auto code = HammingCode::SecDed72();
  Xoshiro256 rng(64);
  const BitVec clean = code.Encode(BitVec::Random(code.k(), rng));
  BitVec word = clean;
  word.Flip(code.n() - 1);  // the overall-parity bit itself
  const auto res = code.Decode(word);
  EXPECT_EQ(res.status, HammingStatus::kCorrected);
  EXPECT_EQ(res.corrected_bit, code.n() - 1);
  EXPECT_EQ(word, clean);
}

}  // namespace
}  // namespace pair_ecc::hamming
