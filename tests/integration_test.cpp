// End-to-end integration: replay one generated workload through BOTH the
// functional data path (scheme encode/decode against a shadow copy) and
// the timing path (controller + protocol checker), with faults arriving
// mid-stream — the closest thing to a full-system run the library does,
// exercising every layer together.
#include <gtest/gtest.h>

#include <map>

#include "dram/rank.hpp"
#include "ecc/scheme.hpp"
#include "faults/injector.hpp"
#include "reliability/outcome.hpp"
#include "timing/controller.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace pair_ecc {
namespace {

using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

struct Replay {
  std::uint64_t reads = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  std::uint64_t corrected = 0;
  timing::SimStats timing;
  std::vector<std::string> violations;
};

/// Runs the trace through the scheme functionally (with a shadow truth map)
/// and through the timing controller; injects `faults` evenly spaced
/// through the stream.
Replay RunBoth(ecc::SchemeKind kind, const workload::WorkloadConfig& wcfg,
           unsigned fault_count, std::uint64_t seed) {
  dram::RankGeometry rg;
  dram::Rank rank(rg);
  auto scheme = ecc::MakeScheme(kind, rank);
  Xoshiro256 rng(seed);

  auto trace = workload::Generate(wcfg);

  // Functional replay.
  Replay out;
  std::map<std::tuple<unsigned, unsigned, unsigned>, BitVec> truth;
  std::vector<faults::RowRef> rows;
  for (unsigned r = 0; r < wcfg.rows; ++r)
    rows.push_back({r % wcfg.banks, r});
  faults::Injector injector(rank, rows);
  const std::size_t fault_every =
      fault_count ? trace.size() / (fault_count + 1) : trace.size() + 1;

  std::size_t i = 0;
  for (const auto& req : trace) {
    if (fault_count && i != 0 && i % fault_every == 0 &&
        i / fault_every <= fault_count) {
      injector.InjectFromMix(faults::FaultMix::Inherent(), rng);
      // Also plant one guaranteed-visible single-bit flip at the next read
      // in the stream, so every faulty run exercises the decode path
      // deterministically (mix faults may land outside the read set).
      for (std::size_t j = i; j < trace.size(); ++j) {
        if (trace[j].op != timing::Op::kRead) continue;
        const auto& a = trace[j].addr;
        rank.device(rng.UniformBelow(8))
            .InjectFlip(a.bank, a.row,
                        a.col * 64 + static_cast<unsigned>(rng.UniformBelow(64)));
        break;
      }
    }
    ++i;
    const auto key =
        std::make_tuple(req.addr.bank, req.addr.row, req.addr.col);
    if (req.op == timing::Op::kWrite) {
      const BitVec line = BitVec::Random(rg.LineBits(), rng);
      scheme->WriteLine(req.addr, line);
      truth[key] = line;
    } else {
      const auto it = truth.find(key);
      const auto read = scheme->ReadLine(req.addr);
      ++out.reads;
      // Unwritten lines are all-zero by construction.
      const BitVec expect =
          it == truth.end() ? BitVec(rg.LineBits()) : it->second;
      const auto outcome = reliability::Classify(read.claim, read.data, expect);
      out.sdc += reliability::IsSdc(outcome);
      out.due += outcome == reliability::Outcome::kDue;
      out.corrected += outcome == reliability::Outcome::kCorrected;
    }
  }

  // Timing replay of the same trace.
  const timing::TimingParams params = timing::TimingParams::Ddr4_3200();
  timing::Controller ctrl(
      params, timing::SchemeTiming::FromPerf(scheme->Perf(), params));
  auto timing_trace = trace;
  out.timing = ctrl.Run(timing_trace);
  out.violations = ctrl.checker().violations();
  return out;
}

workload::WorkloadConfig SmallWorkload(std::uint64_t seed) {
  workload::WorkloadConfig cfg;
  cfg.num_requests = 1500;
  cfg.pattern = workload::Pattern::kHotspot;
  cfg.read_fraction = 0.6;
  cfg.rows = 4;      // small working set so writes and reads collide
  cfg.hot_rows = 2;
  cfg.intensity = 0.1;
  cfg.seed = seed;
  return cfg;
}

class IntegrationTest : public ::testing::TestWithParam<ecc::SchemeKind> {};

TEST_P(IntegrationTest, FaultFreeRunIsPerfectlyClean) {
  const auto out = RunBoth(GetParam(), SmallWorkload(1), /*fault_count=*/0, 11);
  EXPECT_GT(out.reads, 0u);
  EXPECT_EQ(out.sdc, 0u);
  EXPECT_EQ(out.due, 0u);
  EXPECT_EQ(out.corrected, 0u);
  EXPECT_TRUE(out.violations.empty());
  EXPECT_EQ(out.timing.reads + out.timing.writes, 1500u);
}

TEST_P(IntegrationTest, FaultyRunNeverViolatesProtocolAndClassifiesSanely) {
  const auto out = RunBoth(GetParam(), SmallWorkload(2), /*fault_count=*/3, 13);
  EXPECT_TRUE(out.violations.empty());
  // With three inherent faults in a 4-row working set, a protected scheme
  // must be actively correcting or flagging — silent-SDC-only behaviour
  // would be suspicious everywhere except No-ECC.
  if (GetParam() != ecc::SchemeKind::kNoEcc) {
    EXPECT_GT(out.corrected + out.due, 0u);
  }
}

TEST_P(IntegrationTest, TimingCompletesEveryRequestInOrderConstraints) {
  const auto out = RunBoth(GetParam(), SmallWorkload(3), 1, 17);
  EXPECT_GT(out.timing.avg_read_latency, 0.0);
  EXPECT_LE(out.timing.bus_utilization, 1.0);
  EXPECT_GT(out.timing.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, IntegrationTest,
    ::testing::Values(ecc::SchemeKind::kNoEcc, ecc::SchemeKind::kIecc,
                      ecc::SchemeKind::kIeccSecDed, ecc::SchemeKind::kXed,
                      ecc::SchemeKind::kDuo, ecc::SchemeKind::kPair2,
                      ecc::SchemeKind::kPair4, ecc::SchemeKind::kPair4SecDed),
    [](const auto& param_info) {
      std::string n = ecc::ToString(param_info.param);
      for (char& c : n)
        if (c == '-' || c == '+') c = '_';
      return n;
    });

TEST(IntegrationTraceIo, SavedTraceReplaysIdentically) {
  const auto cfg = SmallWorkload(4);
  auto trace = workload::Generate(cfg);
  std::stringstream buffer;
  workload::WriteTrace(trace, buffer);
  auto loaded = workload::ReadTrace(buffer);

  const timing::TimingParams params;
  timing::Controller a(params, timing::SchemeTiming::FromPerf({}, params));
  timing::Controller b(params, timing::SchemeTiming::FromPerf({}, params));
  const auto sa = a.Run(trace);
  const auto sb = b.Run(loaded);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.avg_read_latency, sb.avg_read_latency);
  EXPECT_EQ(sa.row_hits, sb.row_hits);
}

TEST(IntegrationSdc, NoEccEventuallyShowsSilentCorruption) {
  // Sanity of the whole pipeline's ground-truth accounting: the unprotected
  // configuration must exhibit SDC under injected faults.
  unsigned long long total_sdc = 0;
  for (std::uint64_t seed = 0; seed < 5 && total_sdc == 0; ++seed) {
    const auto out =
        RunBoth(ecc::SchemeKind::kNoEcc, SmallWorkload(5 + seed), 4, 19 + seed);
    total_sdc += out.sdc;
  }
  EXPECT_GT(total_sdc, 0u);
}

}  // namespace
}  // namespace pair_ecc
