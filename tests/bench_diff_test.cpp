// Regression-comparator semantics (src/telemetry/diff.*, the library
// behind tools/bench_diff).
//
// Pins the acceptance scenario: a synthetic 10% throughput drop between two
// otherwise-identical reports must be flagged as a regression when timing
// paths are included, and must be invisible with the default options
// (wall-clock is noise). Also pins the tolerance semantics: a path
// regresses only when BOTH the relative and absolute change exceed their
// tolerances, and a baseline path missing from the candidate counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "telemetry/diff.hpp"
#include "telemetry/json.hpp"
#include "telemetry/report.hpp"

namespace pair_ecc::telemetry {
namespace {

Report MakeBenchReport(double trials_per_sec, std::uint64_t reads = 1024) {
  Report report("bench-unit-test");
  report.MetaString("experiment", "F0");
  report.MetaInt("trials", 500);
  report.counters().Add("reads", reads);
  report.AddMetric("sdc_rate", 0.125);
  report.AddTiming("trials_per_sec", trials_per_sec);
  report.AddTiming("wall_seconds", 500.0 / trials_per_sec);
  return report;
}

TEST(BenchDiff, DetectsTenPercentThroughputRegression) {
  const JsonValue baseline = MakeBenchReport(100.0).ToJson();
  const JsonValue candidate = MakeBenchReport(90.0).ToJson();

  DiffOptions options;
  options.include_timing = true;
  options.rel_tol = 0.05;
  const DiffResult result = CompareReports(baseline, candidate, options);

  EXPECT_TRUE(result.HasRegression());
  bool found = false;
  for (const auto& d : result.deltas) {
    if (d.path != "timing.trials_per_sec") continue;
    found = true;
    EXPECT_TRUE(d.regressed);
    EXPECT_DOUBLE_EQ(d.baseline, 100.0);
    EXPECT_DOUBLE_EQ(d.candidate, 90.0);
    EXPECT_NEAR(d.RelChange(), -0.10, 1e-12);
  }
  EXPECT_TRUE(found) << "timing.trials_per_sec was not compared";
}

TEST(BenchDiff, TimingIgnoredByDefault) {
  const JsonValue baseline = MakeBenchReport(100.0).ToJson();
  const JsonValue candidate = MakeBenchReport(50.0).ToJson();
  const DiffResult result = CompareReports(baseline, candidate);
  EXPECT_FALSE(result.HasRegression());
  for (const auto& d : result.deltas)
    EXPECT_NE(d.path.substr(0, 7), "timing.") << d.path;
}

TEST(BenchDiff, WithinToleranceIsNotARegression) {
  const JsonValue baseline = MakeBenchReport(100.0).ToJson();
  const JsonValue candidate = MakeBenchReport(96.0).ToJson();  // -4% < 5%
  DiffOptions options;
  options.include_timing = true;
  EXPECT_FALSE(CompareReports(baseline, candidate, options).HasRegression());
}

TEST(BenchDiff, AbsoluteToleranceSuppressesTinyCounts) {
  // 1 read vs 2 reads is a 100% relative change; a loose abs_tol keeps such
  // statistically-meaningless counter wiggles from gating CI.
  const JsonValue baseline = MakeBenchReport(100.0, /*reads=*/1).ToJson();
  const JsonValue candidate = MakeBenchReport(100.0, /*reads=*/2).ToJson();
  DiffOptions options;
  options.abs_tol = 5.0;
  EXPECT_FALSE(CompareReports(baseline, candidate, options).HasRegression());
  options.abs_tol = 0.5;
  EXPECT_TRUE(CompareReports(baseline, candidate, options).HasRegression());
}

TEST(BenchDiff, MissingBaselinePathCounts) {
  Report baseline("bench-unit-test");
  baseline.counters().Add("reads", 10);
  baseline.counters().Add("writes", 10);
  Report candidate("bench-unit-test");
  candidate.counters().Add("reads", 10);

  const DiffResult strict =
      CompareReports(baseline.ToJson(), candidate.ToJson());
  EXPECT_TRUE(strict.HasRegression());
  ASSERT_EQ(strict.missing.size(), 1u);
  EXPECT_EQ(strict.missing[0], "counters.writes");

  DiffOptions lenient;
  lenient.fail_on_missing = false;
  const DiffResult loose =
      CompareReports(baseline.ToJson(), candidate.ToJson(), lenient);
  EXPECT_FALSE(loose.HasRegression());
  EXPECT_EQ(loose.missing.size(), 1u);  // still reported, just not counted
}

TEST(BenchDiff, AddedCandidatePathIsReportedNotRegressed) {
  Report baseline("bench-unit-test");
  baseline.counters().Add("reads", 10);
  Report candidate("bench-unit-test");
  candidate.counters().Add("reads", 10);
  candidate.counters().Add("scrubs", 4);

  const DiffResult result =
      CompareReports(baseline.ToJson(), candidate.ToJson());
  EXPECT_FALSE(result.HasRegression());
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0], "counters.scrubs");
}

TEST(BenchDiff, IgnorePrefixesSkipWholeSections) {
  Report baseline("bench-unit-test");
  baseline.counters().Add("reads", 10);
  baseline.AddMetric("rate", 0.5);
  Report candidate("bench-unit-test");
  candidate.counters().Add("reads", 99);
  candidate.AddMetric("rate", 0.5);

  DiffOptions options;
  options.ignore_prefixes = {"counters."};
  const DiffResult result =
      CompareReports(baseline.ToJson(), candidate.ToJson(), options);
  EXPECT_FALSE(result.HasRegression());
  for (const auto& d : result.deltas)
    EXPECT_NE(d.path.substr(0, 9), "counters.") << d.path;
}

TEST(BenchDiff, ZeroBaselineRelChangeIsInfinite) {
  Report baseline("bench-unit-test");
  baseline.counters().Add("sdc", 0);
  Report candidate("bench-unit-test");
  candidate.counters().Add("sdc", 3);

  const DiffResult result =
      CompareReports(baseline.ToJson(), candidate.ToJson());
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.deltas[0].regressed);
  EXPECT_TRUE(std::isinf(result.deltas[0].RelChange()));
}

}  // namespace
}  // namespace pair_ecc::telemetry
