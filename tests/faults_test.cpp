// Fault-model and injector tests: spatial footprint of every fault class,
// permanent vs transient semantics, mix sampling, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "dram/rank.hpp"
#include "faults/injector.hpp"
#include "util/rng.hpp"

namespace pair_ecc::faults {
namespace {

using dram::Rank;
using dram::RankGeometry;
using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() : rank_(rg_), injector_(rank_, {{0, 10}, {0, 11}, {1, 20}}) {
    // Fill the working set with random data so stuck-at faults are visible
    // about half the time and flips always.
    Xoshiro256 rng(99);
    for (const auto& r : injector_.working_set()) {
      for (unsigned d = 0; d < rank_.TotalDevices(); ++d) {
        rank_.device(d).WriteBits(
            r.bank, r.row, 0,
            BitVec::Random(rg_.device.TotalRowBits(), rng));
      }
    }
    SnapshotTruth();
  }

  void SnapshotTruth() {
    truth_.clear();
    for (const auto& r : injector_.working_set())
      for (unsigned d = 0; d < rank_.TotalDevices(); ++d)
        truth_.push_back(rank_.device(d).ReadBits(r.bank, r.row, 0,
                                                  rg_.device.TotalRowBits()));
  }

  /// Bits differing from the snapshot, per (row-in-working-set, device).
  std::vector<std::vector<std::size_t>> DiffBits() {
    std::vector<std::vector<std::size_t>> out;
    std::size_t i = 0;
    for (const auto& r : injector_.working_set()) {
      for (unsigned d = 0; d < rank_.TotalDevices(); ++d) {
        const BitVec now =
            rank_.device(d).ReadBits(r.bank, r.row, 0,
                                     rg_.device.TotalRowBits());
        out.push_back((now ^ truth_[i]).SetBits());
        ++i;
      }
    }
    return out;
  }

  std::size_t TotalDiff() {
    std::size_t n = 0;
    for (const auto& v : DiffBits()) n += v.size();
    return n;
  }

  RankGeometry rg_;
  Rank rank_{rg_};
  Injector injector_;
  std::vector<BitVec> truth_;
};

TEST_F(InjectorTest, RejectsEmptyWorkingSet) {
  EXPECT_THROW(Injector(rank_, {}), std::invalid_argument);
}

TEST_F(InjectorTest, RejectsOutOfRangeWorkingSet) {
  EXPECT_THROW(Injector(rank_, {{99, 0}}), std::out_of_range);
}

TEST_F(InjectorTest, SingleBitTransientFlipsExactlyOneBit) {
  Xoshiro256 rng(1);
  const auto f = injector_.Inject(FaultType::kSingleBit, false, rng);
  EXPECT_EQ(f.type, FaultType::kSingleBit);
  EXPECT_FALSE(f.permanent);
  EXPECT_EQ(TotalDiff(), 1u);
}

TEST_F(InjectorTest, SingleBitPermanentDiffersAtMostOneBit) {
  Xoshiro256 rng(2);
  injector_.Inject(FaultType::kSingleBit, true, rng);
  EXPECT_LE(TotalDiff(), 1u);  // stuck at the stored value is invisible
}

TEST_F(InjectorTest, SingleWordStaysWithinOneAlignedWord) {
  Xoshiro256 rng(3);
  const auto f = injector_.Inject(FaultType::kSingleWord, false, rng);
  const auto diffs = DiffBits();
  std::size_t groups_hit = 0;
  for (const auto& bits : diffs) {
    if (bits.empty()) continue;
    ++groups_hit;
    for (auto b : bits) {
      EXPECT_GE(b, f.bit);
      EXPECT_LT(b, f.bit + 128);
    }
  }
  EXPECT_EQ(groups_hit, 1u);  // one device, one row
}

TEST_F(InjectorTest, SinglePinConfinesDamageToOnePinLine) {
  Xoshiro256 rng(4);
  const auto f = injector_.Inject(FaultType::kSinglePin, true, rng);
  const unsigned pin = f.bit;
  const auto diffs = DiffBits();
  std::size_t total = 0;
  for (const auto& bits : diffs) {
    for (auto b : bits) {
      ASSERT_LT(b, rg_.device.row_bits) << "pin fault must spare the parity region";
      EXPECT_EQ(b % rg_.device.dq_pins, pin);
      ++total;
    }
  }
  // ~half the 1024 pin bits read wrong under stuck-at-random.
  EXPECT_GT(total, 350u);
  EXPECT_LT(total, 700u);
}

TEST_F(InjectorTest, SingleRowCorruptsOnlyThatRow) {
  Xoshiro256 rng(5);
  const auto f = injector_.Inject(FaultType::kSingleRow, true, rng);
  std::size_t i = 0;
  for (const auto& r : injector_.working_set()) {
    for (unsigned d = 0; d < rank_.TotalDevices(); ++d) {
      const BitVec now = rank_.device(d).ReadBits(
          r.bank, r.row, 0, rg_.device.TotalRowBits());
      const std::size_t diff = (now ^ truth_[i]).Popcount();
      if (d == f.device && r.bank == f.bank && r.row == f.row) {
        // ~50% of 8704 bits.
        EXPECT_GT(diff, 3800u);
        EXPECT_LT(diff, 4900u);
      } else {
        EXPECT_EQ(diff, 0u);
      }
      ++i;
    }
  }
}

TEST_F(InjectorTest, SingleBankHitsEveryWorkingSetRowOfTheBank) {
  Xoshiro256 rng(6);
  const auto f = injector_.Inject(FaultType::kSingleBank, true, rng);
  std::size_t i = 0;
  for (const auto& r : injector_.working_set()) {
    for (unsigned d = 0; d < rank_.TotalDevices(); ++d) {
      const BitVec now = rank_.device(d).ReadBits(
          r.bank, r.row, 0, rg_.device.TotalRowBits());
      const std::size_t diff = (now ^ truth_[i]).Popcount();
      if (d == f.device && r.bank == f.bank) {
        EXPECT_GT(diff, 3800u) << "row " << r.row;
      } else {
        EXPECT_EQ(diff, 0u);
      }
      ++i;
    }
  }
}

TEST_F(InjectorTest, PinBurstFlipsExactlyLengthConsecutivePinBits) {
  Xoshiro256 rng(7);
  const auto f = injector_.InjectPinBurst(/*device=*/2, /*length=*/5, rng);
  EXPECT_EQ(f.length, 5u);
  const auto diffs = DiffBits();
  std::vector<std::size_t> hit;
  for (std::size_t g = 0; g < diffs.size(); ++g)
    for (auto b : diffs[g]) hit.push_back(b);
  ASSERT_EQ(hit.size(), 5u);
  // All on one pin, consecutive along the pin line.
  const unsigned pin = static_cast<unsigned>(hit[0] % rg_.device.dq_pins);
  for (std::size_t j = 0; j < hit.size(); ++j) {
    EXPECT_EQ(hit[j] % rg_.device.dq_pins, pin);
    EXPECT_EQ(hit[j] / rg_.device.dq_pins, hit[0] / rg_.device.dq_pins + j);
  }
}

TEST_F(InjectorTest, PinBurstRejectsBadLength) {
  Xoshiro256 rng(8);
  EXPECT_THROW(injector_.InjectPinBurst(0, 0, rng), std::invalid_argument);
  EXPECT_THROW(injector_.InjectPinBurst(0, 4096, rng), std::invalid_argument);
}

TEST_F(InjectorTest, InjectionIsDeterministicGivenSeed) {
  Xoshiro256 rng_a(42), rng_b(42);
  const auto fa = injector_.Inject(FaultType::kSingleBit, false, rng_a);
  // Re-flip to undo, then repeat with the same seed.
  rank_.device(fa.device).InjectFlip(fa.bank, fa.row, fa.bit);
  const auto fb = injector_.Inject(FaultType::kSingleBit, false, rng_b);
  EXPECT_EQ(fa.device, fb.device);
  EXPECT_EQ(fa.bank, fb.bank);
  EXPECT_EQ(fa.row, fb.row);
  EXPECT_EQ(fa.bit, fb.bit);
}

// ------------------------------------------------------------------ FaultMix

TEST(FaultMix, PresetsHaveSensibleWeights) {
  EXPECT_NEAR(FaultMix::Inherent().TotalWeight(), 1.0, 1e-9);
  EXPECT_NEAR(FaultMix::CellOnly().TotalWeight(), 1.0, 1e-9);
  EXPECT_NEAR(FaultMix::Clustered().TotalWeight(), 1.0, 1e-9);
  EXPECT_EQ(FaultMix::CellOnly().WeightOf(FaultType::kSinglePin), 0.0);
}

TEST(FaultMix, SampleTypeFollowsWeights) {
  FaultMix mix;
  mix.single_bit = 0.5;
  mix.single_word = 0.0;
  mix.single_pin = 0.5;
  mix.single_row = 0.0;
  mix.single_bank = 0.0;
  mix.pin_burst = 0.0;
  Xoshiro256 rng(9);
  int bits = 0, pins = 0;
  for (int i = 0; i < 10000; ++i) {
    const FaultType t = SampleType(mix, rng);
    ASSERT_TRUE(t == FaultType::kSingleBit || t == FaultType::kSinglePin);
    (t == FaultType::kSingleBit ? bits : pins)++;
  }
  EXPECT_NEAR(static_cast<double>(bits) / 10000.0, 0.5, 0.03);
}

TEST(FaultMix, ZeroWeightMixThrows) {
  FaultMix mix{0, 0, 0, 0, 0, 0, 0.5};
  Xoshiro256 rng(10);
  EXPECT_THROW(SampleType(mix, rng), std::invalid_argument);
}

TEST(FaultMix, ToStringCoversAllTypes) {
  for (FaultType t : kAllFaultTypes) EXPECT_FALSE(ToString(t).empty());
}

TEST(FaultMixSampling, InjectFromMixRespectsPermanentFraction) {
  RankGeometry rg;
  Rank rank(rg);
  Injector injector(rank, {{0, 0}});
  FaultMix mix = FaultMix::CellOnly();
  mix.permanent_fraction = 1.0;
  Xoshiro256 rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto f = injector.InjectFromMix(mix, rng);
    EXPECT_TRUE(f.permanent);
    EXPECT_EQ(f.type, FaultType::kSingleBit);
  }
}

}  // namespace
}  // namespace pair_ecc::faults
