// Reed-Solomon codec tests: polynomial arithmetic, encode/decode round
// trips, guaranteed correction up to t errors, errors-and-erasures bound
// 2e + f <= r, shortening/expansion consistency, and the incremental
// parity-delta update that backs PAIR's write path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rs/poly.hpp"
#include "rs/rs_code.hpp"
#include "util/rng.hpp"

namespace pair_ecc::rs {
namespace {

using pair_ecc::util::Xoshiro256;

std::vector<Elem> RandomData(const GfField& f, unsigned k, Xoshiro256& rng) {
  std::vector<Elem> d(k);
  for (auto& s : d) s = static_cast<Elem>(rng.UniformBelow(f.Size()));
  return d;
}

// Injects `count` errors at distinct random positions; returns positions.
std::vector<unsigned> InjectErrors(const GfField& f, std::vector<Elem>& word,
                                   unsigned count, Xoshiro256& rng) {
  std::set<unsigned> positions;
  while (positions.size() < count)
    positions.insert(static_cast<unsigned>(rng.UniformBelow(word.size())));
  for (unsigned pos : positions) {
    const auto delta = static_cast<Elem>(1 + rng.UniformBelow(f.Size() - 1));
    word[pos] ^= delta;
  }
  return {positions.begin(), positions.end()};
}

// ---------------------------------------------------------------- Polynomial

TEST(Poly, DegreeAndNormalize) {
  Poly p = {1, 2, 0, 0};
  EXPECT_EQ(Degree(p), 1);
  Normalize(p);
  EXPECT_EQ(p.size(), 2u);
  Poly zero = {0, 0};
  EXPECT_EQ(Degree(zero), -1);
}

TEST(Poly, EvalHorner) {
  const auto& f = GfField::Get(8);
  // p(x) = 3 + 2x + x^2 at x=1: 3^2^1 = 0; at x=0: 3.
  const Poly p = {3, 2, 1};
  EXPECT_EQ(Eval(f, p, 0), 3);
  EXPECT_EQ(Eval(f, p, 1), 3 ^ 2 ^ 1);
}

TEST(Poly, AddIsXorOfCoefficients) {
  const Poly a = {1, 2, 3};
  const Poly b = {1, 2, 3};
  EXPECT_EQ(Degree(Add(a, b)), -1);  // self-cancel
  const Poly c = Add(a, Poly{0, 0, 0, 7});
  EXPECT_EQ(Degree(c), 3);
}

TEST(Poly, MulDegreesAdd) {
  const auto& f = GfField::Get(8);
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Poly a = {static_cast<Elem>(1 + rng.UniformBelow(255)),
              static_cast<Elem>(1 + rng.UniformBelow(255))};
    Poly b = {static_cast<Elem>(1 + rng.UniformBelow(255)),
              static_cast<Elem>(1 + rng.UniformBelow(255)),
              static_cast<Elem>(1 + rng.UniformBelow(255))};
    EXPECT_EQ(Degree(Mul(f, a, b)), Degree(a) + Degree(b));
  }
}

TEST(Poly, MulByZeroIsZero) {
  const auto& f = GfField::Get(8);
  EXPECT_TRUE(Mul(f, {}, {1, 2}).empty());
  EXPECT_TRUE(Mul(f, {0}, {1, 2}).empty());
}

TEST(Poly, ModReturnsZeroForMultiples) {
  const auto& f = GfField::Get(8);
  const Poly a = {5, 7, 1};
  const Poly b = {9, 3};
  const Poly prod = Mul(f, a, b);
  EXPECT_EQ(Degree(Mod(f, prod, b)), -1);
  EXPECT_EQ(Degree(Mod(f, prod, a)), -1);
}

TEST(Poly, ModDegreeBelowDivisor) {
  const auto& f = GfField::Get(8);
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    Poly a(10);
    for (auto& c : a) c = static_cast<Elem>(rng.UniformBelow(256));
    Poly b = {static_cast<Elem>(rng.UniformBelow(256)),
              static_cast<Elem>(rng.UniformBelow(256)),
              static_cast<Elem>(1 + rng.UniformBelow(255))};
    EXPECT_LT(Degree(Mod(f, a, b)), Degree(b));
  }
}

TEST(Poly, DivisionIdentity) {
  // a = q*b + r implies a + r is a multiple of b (char 2): check a ^ Mod == multiple.
  const auto& f = GfField::Get(8);
  Xoshiro256 rng(3);
  Poly a(8);
  for (auto& c : a) c = static_cast<Elem>(rng.UniformBelow(256));
  const Poly b = {7, 0, 1};  // x^2 + 7
  const Poly r = Mod(f, a, b);
  const Poly diff = Add(a, r);
  EXPECT_EQ(Degree(Mod(f, diff, b)), -1);
}

TEST(Poly, DerivativeKeepsOddTerms) {
  // p = c0 + c1 x + c2 x^2 + c3 x^3 -> p' = c1 + c3 x^2 in char 2.
  const Poly p = {4, 5, 6, 7};
  const Poly d = Derivative(p);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 5);
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[2], 7);
}

TEST(Poly, ShiftUpMultipliesByXPow) {
  const auto& f = GfField::Get(8);
  const Poly p = {3, 1};
  const Poly shifted = ShiftUp(p, 2);
  EXPECT_EQ(Degree(shifted), 3);
  EXPECT_EQ(Eval(f, shifted, 2), f.Mul(Eval(f, p, 2), f.Pow(2, 2)));
}

// ------------------------------------------------------------- Construction

TEST(RsCode, RejectsInvalidParameters) {
  const auto& f = GfField::Get(8);
  EXPECT_THROW(RsCode(f, 10, 10), std::invalid_argument);
  EXPECT_THROW(RsCode(f, 10, 11), std::invalid_argument);
  EXPECT_THROW(RsCode(f, 256, 200), std::invalid_argument);
  EXPECT_THROW(RsCode(f, 5, 0), std::invalid_argument);
}

TEST(RsCode, ParametersAndOverhead) {
  const auto code = RsCode::Gf256(68, 64);
  EXPECT_EQ(code.n(), 68u);
  EXPECT_EQ(code.k(), 64u);
  EXPECT_EQ(code.r(), 4u);
  EXPECT_EQ(code.t(), 2u);
  EXPECT_DOUBLE_EQ(code.Overhead(), 0.0625);
  EXPECT_EQ(code.MaxK(), 251u);
}

TEST(RsCode, GeneratorHasDegreeRAndRootsAtAlphaPowers) {
  const auto code = RsCode::Gf256(34, 32);
  const auto& f = code.field();
  EXPECT_EQ(Degree(code.Generator()), 2);
  for (unsigned i = 1; i <= code.r(); ++i)
    EXPECT_EQ(Eval(f, code.Generator(), f.AlphaPow(i)), 0);
  // alpha^0 must NOT be a root of a narrow-sense generator.
  EXPECT_NE(Eval(f, code.Generator(), 1), 0);
}

// -------------------------------------------------------------- Encode paths

struct CodeParams {
  unsigned m, n, k;
};

class RsRoundTripTest : public ::testing::TestWithParam<CodeParams> {
 protected:
  RsRoundTripTest()
      : field_(GfField::Get(GetParam().m)),
        code_(field_, GetParam().n, GetParam().k) {}
  const GfField& field_;
  RsCode code_;
};

TEST_P(RsRoundTripTest, EncodeProducesCodeword) {
  Xoshiro256 rng(1000);
  for (int trial = 0; trial < 20; ++trial) {
    const auto data = RandomData(field_, code_.k(), rng);
    const auto cw = code_.Encode(data);
    ASSERT_EQ(cw.size(), code_.n());
    EXPECT_TRUE(code_.IsCodeword(cw));
    // Systematic: data appears verbatim.
    EXPECT_TRUE(std::equal(data.begin(), data.end(), cw.begin()));
  }
}

TEST_P(RsRoundTripTest, CleanWordDecodesAsNoError) {
  Xoshiro256 rng(1001);
  auto cw = code_.Encode(RandomData(field_, code_.k(), rng));
  const auto res = code_.Decode(cw);
  EXPECT_EQ(res.status, DecodeStatus::kNoError);
}

TEST_P(RsRoundTripTest, CorrectsUpToTErrors) {
  Xoshiro256 rng(1002);
  for (unsigned e = 1; e <= code_.t(); ++e) {
    for (int trial = 0; trial < 25; ++trial) {
      const auto data = RandomData(field_, code_.k(), rng);
      const auto clean = code_.Encode(data);
      auto word = clean;
      InjectErrors(field_, word, e, rng);
      const auto res = code_.Decode(word);
      ASSERT_EQ(res.status, DecodeStatus::kCorrected)
          << "e=" << e << " trial=" << trial;
      EXPECT_EQ(res.NumCorrected(), e);
      EXPECT_EQ(word, clean);
    }
  }
}

TEST_P(RsRoundTripTest, ErasuresUpToRAreRecovered) {
  Xoshiro256 rng(1003);
  for (unsigned fcount = 1; fcount <= code_.r(); ++fcount) {
    const auto data = RandomData(field_, code_.k(), rng);
    const auto clean = code_.Encode(data);
    auto word = clean;
    std::set<unsigned> unique;
    while (unique.size() < fcount)
      unique.insert(static_cast<unsigned>(rng.UniformBelow(code_.n())));
    std::vector<unsigned> erasures(unique.begin(), unique.end());
    for (unsigned pos : erasures)
      word[pos] ^= static_cast<Elem>(1 + rng.UniformBelow(field_.Size() - 1));
    const auto res = code_.Decode(word, erasures);
    ASSERT_NE(res.status, DecodeStatus::kFailure) << "f=" << fcount;
    EXPECT_EQ(word, clean);
  }
}

TEST_P(RsRoundTripTest, ErrorsPlusErasuresWithinBound) {
  Xoshiro256 rng(1004);
  const unsigned r = code_.r();
  for (unsigned f_count = 0; f_count <= r; ++f_count) {
    const unsigned max_e = (r - f_count) / 2;
    for (unsigned e = 0; e <= max_e; ++e) {
      if (e + f_count == 0 || e + f_count > code_.n()) continue;
      const auto data = RandomData(field_, code_.k(), rng);
      const auto clean = code_.Encode(data);
      auto word = clean;
      // Pick disjoint erasure and error positions.
      std::set<unsigned> all;
      while (all.size() < f_count + e)
        all.insert(static_cast<unsigned>(rng.UniformBelow(code_.n())));
      std::vector<unsigned> positions(all.begin(), all.end());
      std::vector<unsigned> erasures(positions.begin(),
                                     positions.begin() + f_count);
      for (unsigned i = 0; i < f_count + e; ++i)
        word[positions[i]] ^=
            static_cast<Elem>(1 + rng.UniformBelow(field_.Size() - 1));
      const auto res = code_.Decode(word, erasures);
      ASSERT_NE(res.status, DecodeStatus::kFailure)
          << "f=" << f_count << " e=" << e;
      EXPECT_EQ(word, clean) << "f=" << f_count << " e=" << e;
    }
  }
}

TEST_P(RsRoundTripTest, BeyondBoundIsNeverSilentlyWrongAboutStatus) {
  // With > t errors the decoder must either fail (detected) or land on some
  // codeword (miscorrection). It must never return kCorrected with a
  // non-codeword, nor corrupt the word on failure.
  Xoshiro256 rng(1005);
  const unsigned overload = code_.t() + 1;
  for (int trial = 0; trial < 40; ++trial) {
    const auto data = RandomData(field_, code_.k(), rng);
    const auto clean = code_.Encode(data);
    auto word = clean;
    InjectErrors(field_, word, overload, rng);
    const auto received = word;
    const auto res = code_.Decode(word);
    if (res.status == DecodeStatus::kFailure) {
      EXPECT_EQ(word, received);  // untouched on failure
    } else {
      EXPECT_TRUE(code_.IsCodeword(word));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsRoundTripTest,
    ::testing::Values(CodeParams{8, 68, 64},    // PAIR-4
                      CodeParams{8, 34, 32},    // PAIR-2
                      CodeParams{8, 76, 64},    // DUO rank code
                      CodeParams{8, 255, 247},  // full-length
                      CodeParams{8, 18, 10},    // heavily shortened, t=4
                      CodeParams{4, 15, 9},     // small field, full length
                      CodeParams{4, 12, 6},     // small field, shortened
                      CodeParams{10, 100, 90}));  // wide field

// ------------------------------------------------------------- Expandability

TEST(RsExpandability, ExpandedCodeKeepsRedundancyAndT) {
  const auto base = RsCode::Gf256(34, 32);
  const auto wide = base.Expanded(128);
  EXPECT_EQ(wide.r(), base.r());
  EXPECT_EQ(wide.t(), base.t());
  EXPECT_EQ(wide.k(), 128u);
  EXPECT_EQ(wide.n(), 130u);
}

TEST(RsExpandability, SameGeneratorAcrossExpansion) {
  const auto a = RsCode::Gf256(34, 32);
  const auto b = a.Expanded(64);
  EXPECT_EQ(a.Generator(), b.Generator());
}

TEST(RsExpandability, ZeroPaddedDataGivesSameParity) {
  // Shortening semantics: encoding data in the long code with leading zeros
  // must produce the same parity as the short code. This is the property
  // that lets PAIR grow a codeword along the pin line while reusing the
  // encoder/decoder hardware.
  Xoshiro256 rng(2000);
  const auto short_code = RsCode::Gf256(34, 32);
  const auto long_code = short_code.Expanded(64);
  const auto& f = short_code.field();
  const auto data = RandomData(f, 32, rng);
  std::vector<Elem> padded(64, 0);
  std::copy(data.begin(), data.end(), padded.begin() + 32);
  const auto p_short = short_code.ComputeParity(data);
  const auto p_long = long_code.ComputeParity(padded);
  EXPECT_EQ(p_short, p_long);
}

TEST(RsExpandability, OverheadShrinksAsKGrows) {
  const auto base = RsCode::Gf256(20, 16);
  double prev = base.Overhead();
  for (unsigned k : {32u, 64u, 128u, base.MaxK()}) {
    const auto code = base.Expanded(k);
    EXPECT_LT(code.Overhead(), prev);
    prev = code.Overhead();
  }
}

TEST(RsExpandability, ExpandedStillCorrectsTErrors) {
  Xoshiro256 rng(2001);
  const auto code = RsCode::Gf256(34, 32).Expanded(251);  // max expansion
  EXPECT_EQ(code.n(), 253u);
  const auto data = RandomData(code.field(), code.k(), rng);
  const auto clean = code.Encode(data);
  auto word = clean;
  InjectErrors(code.field(), word, code.t(), rng);
  EXPECT_EQ(code.Decode(word).status, DecodeStatus::kCorrected);
  EXPECT_EQ(word, clean);
}

TEST(RsExpandability, RejectsOverExpansion) {
  const auto code = RsCode::Gf256(34, 32);
  EXPECT_THROW(code.Expanded(code.MaxK() + 1), std::invalid_argument);
}

// -------------------------------------------------------------- Parity delta

TEST(RsParityDelta, MatchesFullReencode) {
  Xoshiro256 rng(3000);
  const auto code = RsCode::Gf256(68, 64);
  const auto& f = code.field();
  for (int trial = 0; trial < 50; ++trial) {
    auto data = RandomData(f, code.k(), rng);
    auto parity = code.ComputeParity(data);
    // Mutate one random data symbol and apply the delta update.
    const auto idx = static_cast<unsigned>(rng.UniformBelow(code.k()));
    const auto new_val = static_cast<Elem>(rng.UniformBelow(f.Size()));
    const Elem delta = data[idx] ^ new_val;
    const auto pdelta = code.ParityDelta(idx, delta);
    for (unsigned j = 0; j < code.r(); ++j) parity[j] ^= pdelta[j];
    data[idx] = new_val;
    EXPECT_EQ(parity, code.ComputeParity(data)) << "trial " << trial;
  }
}

TEST(RsParityDelta, SequenceOfUpdatesStaysConsistent) {
  // Models PAIR's write path: many independent symbol writes into the same
  // codeword, parity maintained incrementally throughout.
  Xoshiro256 rng(3001);
  const auto code = RsCode::Gf256(68, 64);
  const auto& f = code.field();
  auto data = RandomData(f, code.k(), rng);
  auto parity = code.ComputeParity(data);
  for (int write = 0; write < 200; ++write) {
    const auto idx = static_cast<unsigned>(rng.UniformBelow(code.k()));
    const auto new_val = static_cast<Elem>(rng.UniformBelow(f.Size()));
    const auto pdelta = code.ParityDelta(idx, data[idx] ^ new_val);
    for (unsigned j = 0; j < code.r(); ++j) parity[j] ^= pdelta[j];
    data[idx] = new_val;
  }
  EXPECT_EQ(parity, code.ComputeParity(data));
  std::vector<Elem> cw(data);
  cw.insert(cw.end(), parity.begin(), parity.end());
  EXPECT_TRUE(code.IsCodeword(cw));
}

TEST(RsParityDelta, ZeroDeltaIsNoOp) {
  const auto code = RsCode::Gf256(34, 32);
  const auto d = code.ParityDelta(5, 0);
  EXPECT_TRUE(std::all_of(d.begin(), d.end(), [](Elem e) { return e == 0; }));
}

TEST(RsParityDelta, RejectsOutOfRangeIndex) {
  const auto code = RsCode::Gf256(34, 32);
  EXPECT_THROW(code.ParityDelta(32, 1), std::invalid_argument);
}

// ----------------------------------------------------------- Shape fuzzing

// Randomly generated (m, n, k) shapes, each hammered with round trips,
// within-budget corrections, and erasure fills — the broad-coverage net
// behind the targeted suites above.
class RsShapeFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RsShapeFuzzTest, RandomShapeHoldsAllGuarantees) {
  Xoshiro256 rng(77000 + GetParam());
  const unsigned m = 3 + static_cast<unsigned>(rng.UniformBelow(8));  // 3..10
  const auto& f = GfField::Get(m);
  const unsigned max_n = f.Order();
  const unsigned n = 4 + static_cast<unsigned>(rng.UniformBelow(max_n - 3));
  const unsigned r = 1 + static_cast<unsigned>(rng.UniformBelow(
                             std::min(n - 1, 12u)));
  const unsigned k = n - r;
  const RsCode code(f, n, k);
  SCOPED_TRACE("GF(2^" + std::to_string(m) + ") RS(" + std::to_string(n) +
               "," + std::to_string(k) + ")");

  for (int trial = 0; trial < 8; ++trial) {
    const auto data = RandomData(f, k, rng);
    const auto clean = code.Encode(data);
    ASSERT_TRUE(code.IsCodeword(clean));

    // Errors up to t.
    if (code.t() > 0) {
      auto word = clean;
      const unsigned e =
          1 + static_cast<unsigned>(rng.UniformBelow(code.t()));
      InjectErrors(f, word, e, rng);
      ASSERT_EQ(code.Decode(word).status, DecodeStatus::kCorrected);
      ASSERT_EQ(word, clean);
    }

    // Full-budget erasures.
    {
      auto word = clean;
      std::set<unsigned> unique;
      while (unique.size() < code.r() && unique.size() < code.n())
        unique.insert(static_cast<unsigned>(rng.UniformBelow(code.n())));
      std::vector<unsigned> erasures(unique.begin(), unique.end());
      for (unsigned pos : erasures)
        word[pos] ^= static_cast<Elem>(1 + rng.UniformBelow(f.Size() - 1));
      ASSERT_NE(code.Decode(word, erasures).status, DecodeStatus::kFailure);
      ASSERT_EQ(word, clean);
    }

    // Parity delta equivalence on one random symbol.
    {
      auto data2 = data;
      auto parity = code.ComputeParity(data2);
      const auto idx = static_cast<unsigned>(rng.UniformBelow(k));
      const auto nv = static_cast<Elem>(rng.UniformBelow(f.Size()));
      const auto pd = code.ParityDelta(idx, data2[idx] ^ nv);
      for (unsigned j = 0; j < code.r(); ++j) parity[j] ^= pd[j];
      data2[idx] = nv;
      ASSERT_EQ(parity, code.ComputeParity(data2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwentyShapes, RsShapeFuzzTest,
                         ::testing::Range(0u, 20u));

// ------------------------------------------------------------------- Decode

TEST(RsDecode, RejectsWrongLengthAndBadErasures) {
  const auto code = RsCode::Gf256(34, 32);
  std::vector<Elem> too_short(10, 0);
  EXPECT_THROW(code.Decode(too_short), std::invalid_argument);
  std::vector<Elem> word(34, 0);
  const std::vector<unsigned> bad = {34};
  EXPECT_THROW(code.Decode(word, bad), std::invalid_argument);
}

TEST(RsDecode, RejectsDuplicateErasures) {
  const auto code = RsCode::Gf256(68, 64);
  std::vector<Elem> word(68, 0);
  const std::vector<unsigned> dup = {3, 7, 3};
  EXPECT_THROW(code.Decode(word, dup), std::invalid_argument);
}

TEST(RsDecode, DecodeIsDeterministic) {
  Xoshiro256 rng(4242);
  const auto code = RsCode::Gf256(68, 64);
  const auto clean = code.Encode(RandomData(code.field(), 64, rng));
  auto w1 = clean, w2 = clean;
  InjectErrors(code.field(), w1, 3, rng);  // beyond t
  w2 = w1;
  const auto r1 = code.Decode(w1);
  const auto r2 = code.Decode(w2);
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(w1, w2);
}

TEST(RsDecode, ShortenedAndExpandedAgreeOnSharedPrefix) {
  // Decoding a shortened word must behave exactly like decoding the
  // expanded word with zero padding — the invariant that lets PAIR reuse
  // one decoder for every k.
  Xoshiro256 rng(4343);
  const auto short_code = RsCode::Gf256(34, 32);
  const auto long_code = short_code.Expanded(64);
  const auto data = RandomData(short_code.field(), 32, rng);
  auto short_word = short_code.Encode(data);
  std::vector<Elem> padded(64, 0);
  std::copy(data.begin(), data.end(), padded.begin() + 32);
  auto long_word = long_code.Encode(padded);
  // Same two errors at corresponding positions.
  short_word[5] ^= 0x21;
  long_word[32 + 5] ^= 0x21;
  const auto rs = short_code.Decode(short_word);
  const auto rl = long_code.Decode(long_word);
  EXPECT_EQ(rs.status, DecodeStatus::kCorrected);
  EXPECT_EQ(rl.status, DecodeStatus::kCorrected);
  EXPECT_TRUE(std::equal(short_word.begin(), short_word.begin() + 32,
                         long_word.begin() + 32));
}

TEST(RsDecode, MoreErasuresThanRFails) {
  Xoshiro256 rng(4000);
  const auto code = RsCode::Gf256(34, 32);
  auto word = code.Encode(RandomData(code.field(), 32, rng));
  std::vector<unsigned> erasures = {0, 1, 2};  // r = 2
  word[0] ^= 1;
  EXPECT_EQ(code.Decode(word, erasures).status, DecodeStatus::kFailure);
}

TEST(RsDecode, ErasureFlagOnCleanWordIsNoError) {
  Xoshiro256 rng(4001);
  const auto code = RsCode::Gf256(68, 64);
  auto word = code.Encode(RandomData(code.field(), 64, rng));
  const std::vector<unsigned> erasures = {3, 10};
  EXPECT_EQ(code.Decode(word, erasures).status, DecodeStatus::kNoError);
}

TEST(RsDecode, BurstWithinOneSymbolIsOneSymbolError) {
  // An 8-bit burst confined to one symbol is a single symbol error — the
  // alignment property PAIR builds on.
  Xoshiro256 rng(4002);
  const auto code = RsCode::Gf256(68, 64);
  const auto clean = code.Encode(RandomData(code.field(), 64, rng));
  auto word = clean;
  word[17] ^= 0xFF;  // all 8 bits of the symbol flipped
  const auto res = code.Decode(word);
  ASSERT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(res.NumCorrected(), 1u);
  EXPECT_EQ(word, clean);
}

TEST(RsDecode, CorrectionsReportAccuratePositionsAndMagnitudes) {
  Xoshiro256 rng(4003);
  const auto code = RsCode::Gf256(68, 64);
  const auto clean = code.Encode(RandomData(code.field(), 64, rng));
  auto word = clean;
  word[5] ^= 0x3C;
  word[40] ^= 0x81;
  const auto res = code.Decode(word);
  ASSERT_EQ(res.status, DecodeStatus::kCorrected);
  ASSERT_EQ(res.corrections.size(), 2u);
  std::set<unsigned> pos;
  for (const auto& c : res.corrections) pos.insert(c.position);
  EXPECT_TRUE(pos.count(5));
  EXPECT_TRUE(pos.count(40));
  for (const auto& c : res.corrections) {
    if (c.position == 5) {
      EXPECT_EQ(c.magnitude, 0x3C);
    } else if (c.position == 40) {
      EXPECT_EQ(c.magnitude, 0x81);
    }
  }
}

TEST(RsDecode, ParityOnlyErrorsAreCorrected) {
  Xoshiro256 rng(4004);
  const auto code = RsCode::Gf256(68, 64);
  const auto clean = code.Encode(RandomData(code.field(), 64, rng));
  auto word = clean;
  word[64] ^= 0x10;
  word[67] ^= 0x02;
  EXPECT_EQ(code.Decode(word).status, DecodeStatus::kCorrected);
  EXPECT_EQ(word, clean);
}

TEST(RsDecode, OddRedundancyCorrectsFloorHalf) {
  // r = 3 gives t = 1 with one extra detection symbol.
  Xoshiro256 rng(4005);
  const auto& f = GfField::Get(8);
  const RsCode code(f, 35, 32);
  EXPECT_EQ(code.t(), 1u);
  const auto clean = code.Encode(RandomData(f, 32, rng));
  auto word = clean;
  InjectErrors(f, word, 1, rng);
  EXPECT_EQ(code.Decode(word).status, DecodeStatus::kCorrected);
  EXPECT_EQ(word, clean);
}

}  // namespace
}  // namespace pair_ecc::rs
