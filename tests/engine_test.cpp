// TrialEngine determinism contract (see src/reliability/engine.hpp).
//
// The engine promises bitwise-identical results for any thread count,
// including threads=1 matching the pre-engine serial implementation. The
// golden table below was pinned from that serial implementation (the
// pre-refactor trial loop with `master.Fork()` per trial); any drift in the
// per-trial RNG derivation, shard grouping, or merge order fails here.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "reliability/engine.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/telemetry.hpp"

namespace pair_ecc::reliability {
namespace {

ScenarioConfig GoldenConfig(ecc::SchemeKind kind, unsigned threads) {
  ScenarioConfig cfg;
  cfg.scheme = kind;
  cfg.mix = faults::FaultMix::Inherent();
  cfg.faults_per_trial = 2;
  cfg.working_rows = 1;
  cfg.lines_per_row = 4;
  cfg.seed = 0xD5EED;
  cfg.threads = threads;
  return cfg;
}

constexpr unsigned kGoldenTrials = 48;

struct GoldenRow {
  ecc::SchemeKind kind;
  std::uint64_t trials, reads, no_error, corrected, due, sdc_miscorrected,
      sdc_undetected, trials_with_sdc, trials_with_due, trials_with_failure;
};

// Pinned from the serial implementation predating the trial engine.
constexpr GoldenRow kGolden[] = {
    {ecc::SchemeKind::kNoEcc,       48, 192, 136, 0, 0, 0, 56, 14, 0, 14},
    {ecc::SchemeKind::kIecc,        48, 192, 136, 0, 32, 24, 0, 13, 13, 14},
    {ecc::SchemeKind::kSecDed,      48, 192, 136, 24, 32, 0, 0, 0, 8, 8},
    {ecc::SchemeKind::kIeccSecDed,  48, 192, 136, 10, 46, 0, 0, 0, 14, 14},
    {ecc::SchemeKind::kXed,         48, 192, 136, 29, 1, 26, 0, 13, 1, 13},
    {ecc::SchemeKind::kDuo,         48, 192, 136, 24, 32, 0, 0, 0, 8, 8},
    {ecc::SchemeKind::kPair2,       48, 192, 20, 76, 96, 0, 0, 0, 24, 24},
    {ecc::SchemeKind::kPair4,       48, 192, 20, 116, 56, 0, 0, 0, 14, 14},
    {ecc::SchemeKind::kPair4SecDed, 48, 192, 20, 116, 56, 0, 0, 0, 14, 14},
};

TEST(EngineGolden, SerialMatchesPreEngineImplementation) {
  for (const auto& g : kGolden) {
    const OutcomeCounts c =
        RunMonteCarlo(GoldenConfig(g.kind, /*threads=*/1), kGoldenTrials);
    SCOPED_TRACE(ecc::ToString(g.kind));
    EXPECT_EQ(c.trials, g.trials);
    EXPECT_EQ(c.reads, g.reads);
    EXPECT_EQ(c.no_error, g.no_error);
    EXPECT_EQ(c.corrected, g.corrected);
    EXPECT_EQ(c.due, g.due);
    EXPECT_EQ(c.sdc_miscorrected, g.sdc_miscorrected);
    EXPECT_EQ(c.sdc_undetected, g.sdc_undetected);
    EXPECT_EQ(c.trials_with_sdc, g.trials_with_sdc);
    EXPECT_EQ(c.trials_with_due, g.trials_with_due);
    EXPECT_EQ(c.trials_with_failure, g.trials_with_failure);
  }
}

TEST(EngineDeterminism, MonteCarloBitwiseEqualAcrossThreadCounts) {
  for (const auto kind : ecc::AllSchemeKinds()) {
    SCOPED_TRACE(ecc::ToString(kind));
    const OutcomeCounts serial =
        RunMonteCarlo(GoldenConfig(kind, /*threads=*/1), kGoldenTrials);
    for (unsigned threads : {2u, 8u}) {
      const OutcomeCounts parallel =
          RunMonteCarlo(GoldenConfig(kind, threads), kGoldenTrials);
      EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
  }
}

TEST(EngineDeterminism, TrialCountNotAMultipleOfShardSize) {
  // 19 trials = one full shard + a 3-trial tail; exercises the partial-shard
  // edge in both serial and pooled modes.
  const auto cfg1 = GoldenConfig(ecc::SchemeKind::kPair4, 1);
  const auto cfg8 = GoldenConfig(ecc::SchemeKind::kPair4, 8);
  EXPECT_EQ(RunMonteCarlo(cfg1, 19), RunMonteCarlo(cfg8, 19));
}

TEST(EngineDeterminism, LifetimeBitwiseEqualAcrossThreadCounts) {
  LifetimeConfig cfg;
  cfg.scheme = ecc::SchemeKind::kPair4;
  cfg.epochs = 12;
  cfg.faults_per_epoch = 0.4;
  cfg.scrub_interval = 4;
  cfg.seed = 0xD5EED;
  cfg.threads = 1;
  const LifetimeStats serial = RunLifetime(cfg, 40);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const LifetimeStats parallel = RunLifetime(cfg, 40);
    EXPECT_EQ(parallel.trials, serial.trials) << "threads=" << threads;
    EXPECT_EQ(parallel.trials_with_sdc, serial.trials_with_sdc);
    EXPECT_EQ(parallel.trials_with_due, serial.trials_with_due);
    EXPECT_EQ(parallel.total_corrections, serial.total_corrections);
    EXPECT_EQ(parallel.total_scrub_writebacks, serial.total_scrub_writebacks);
    // Bitwise, not approximate: the engine's fixed shard grouping makes even
    // the floating-point mean reproducible.
    EXPECT_EQ(parallel.mean_sdc_epoch, serial.mean_sdc_epoch);
  }
}

// Telemetry rides inside the shard accumulators, so it inherits the same
// determinism contract as the outcome counts: identical values for any
// thread count, and collecting it must not perturb the golden outcomes
// (harvesting reads counters only — no RNG draws).
TEST(EngineTelemetry, CountersAreThreadCountInvariant) {
  for (const auto kind : ecc::AllSchemeKinds()) {
    SCOPED_TRACE(ecc::ToString(kind));
    ScenarioTelemetry serial;
    const OutcomeCounts counts =
        RunMonteCarlo(GoldenConfig(kind, /*threads=*/1), kGoldenTrials,
                      &serial);
    for (unsigned threads : {2u, 8u}) {
      ScenarioTelemetry parallel;
      const OutcomeCounts pcounts = RunMonteCarlo(
          GoldenConfig(kind, threads), kGoldenTrials, &parallel);
      EXPECT_EQ(pcounts, counts) << "threads=" << threads;
      EXPECT_EQ(parallel.trial, serial.trial) << "threads=" << threads;
    }
  }
}

TEST(EngineTelemetry, CollectionDoesNotPerturbGoldenOutcomes) {
  // The golden table was pinned before telemetry existed; an instrumented
  // run must still reproduce it bitwise.
  for (const auto& g : kGolden) {
    SCOPED_TRACE(ecc::ToString(g.kind));
    ScenarioTelemetry tel;
    const OutcomeCounts c =
        RunMonteCarlo(GoldenConfig(g.kind, /*threads=*/1), kGoldenTrials,
                      &tel);
    EXPECT_EQ(c.no_error, g.no_error);
    EXPECT_EQ(c.corrected, g.corrected);
    EXPECT_EQ(c.due, g.due);
    EXPECT_EQ(c.sdc_miscorrected, g.sdc_miscorrected);
    EXPECT_EQ(c.sdc_undetected, g.sdc_undetected);
    // Structural counter invariants, valid for every scheme.
    EXPECT_EQ(tel.trial.codec.decodes, c.reads);
    EXPECT_EQ(tel.trial.codec.writes, c.reads) << "1 write per read here";
    EXPECT_EQ(tel.trial.codec.claim_clean + tel.trial.codec.claim_corrected +
                  tel.trial.codec.claim_detected,
              tel.trial.codec.decodes);
    EXPECT_EQ(tel.trial.injection.total,
              static_cast<std::uint64_t>(kGoldenTrials) * 2);
    EXPECT_EQ(tel.trial.injection.permanent + tel.trial.injection.transient,
              tel.trial.injection.total);
    EXPECT_EQ(tel.trial.corrected_units.TotalCount(), c.reads);
    EXPECT_EQ(tel.engine.trials, kGoldenTrials);
    EXPECT_EQ(tel.engine.shards,
              (kGoldenTrials + TrialEngine::kShardTrials - 1) /
                  TrialEngine::kShardTrials);
  }
}

// Pinned telemetry goldens for one representative scheme per family; any
// drift in the NVI counting layer (double counting, scrub traffic leaking
// into host counters) fails here even when the outcomes stay right.
struct TelemetryGoldenRow {
  ecc::SchemeKind kind;
  std::uint64_t claim_clean, claim_corrected, claim_detected, corrected_units,
      faults_single_bit, faults_permanent;
};

constexpr TelemetryGoldenRow kTelemetryGolden[] = {
    {ecc::SchemeKind::kIecc, 136, 24, 32, 27, 69, 70},
    {ecc::SchemeKind::kSecDed, 136, 24, 32, 219, 69, 70},
    {ecc::SchemeKind::kPair4, 20, 116, 56, 808, 69, 70},
};

TEST(EngineTelemetry, GoldenCounterValues) {
  for (const auto& g : kTelemetryGolden) {
    SCOPED_TRACE(ecc::ToString(g.kind));
    ScenarioTelemetry tel;
    RunMonteCarlo(GoldenConfig(g.kind, /*threads=*/1), kGoldenTrials, &tel);
    EXPECT_EQ(tel.trial.codec.claim_clean, g.claim_clean);
    EXPECT_EQ(tel.trial.codec.claim_corrected, g.claim_corrected);
    EXPECT_EQ(tel.trial.codec.claim_detected, g.claim_detected);
    EXPECT_EQ(tel.trial.codec.corrected_units, g.corrected_units);
    const auto bit_index =
        static_cast<std::size_t>(faults::FaultType::kSingleBit);
    EXPECT_EQ(tel.trial.injection.by_type[bit_index], g.faults_single_bit);
    EXPECT_EQ(tel.trial.injection.permanent, g.faults_permanent);
  }
}

// A custom accumulator through the generic Run(): per-trial first draws,
// summed. Checks seeds are per-trial (not per-worker) and the merge is in
// shard order.
struct DrawSum {
  std::uint64_t xor_all = 0;
  std::uint64_t count = 0;
  DrawSum& operator+=(const DrawSum& o) noexcept {
    xor_all ^= o.xor_all;
    count += o.count;
    return *this;
  }
};

TEST(EngineGeneric, CustomAccumulatorIsThreadCountInvariant) {
  constexpr std::uint64_t kTrials = 100;  // 6 shards + partial tail
  auto body = [](std::uint64_t trial, util::Xoshiro256& rng, DrawSum& acc) {
    acc.xor_all ^= rng() * (trial + 1);
    ++acc.count;
  };
  const DrawSum serial = TrialEngine(1).Run<DrawSum>(123, kTrials, body);
  EXPECT_EQ(serial.count, kTrials);
  for (unsigned threads : {2u, 3u, 8u, 16u}) {
    const DrawSum parallel =
        TrialEngine(threads).Run<DrawSum>(123, kTrials, body);
    EXPECT_EQ(parallel.xor_all, serial.xor_all) << "threads=" << threads;
    EXPECT_EQ(parallel.count, serial.count) << "threads=" << threads;
  }
}

TEST(EngineGeneric, SeedChangesResults) {
  auto body = [](std::uint64_t, util::Xoshiro256& rng, DrawSum& acc) {
    acc.xor_all ^= rng();
    ++acc.count;
  };
  const DrawSum a = TrialEngine(4).Run<DrawSum>(1, 64, body);
  const DrawSum b = TrialEngine(4).Run<DrawSum>(2, 64, body);
  EXPECT_NE(a.xor_all, b.xor_all);
}

TEST(EngineGeneric, PerTrialStreamMatchesSerialForkSequence) {
  // The contract: trial i's stream is Xoshiro256(s_i) where s_i is the i-th
  // output of Xoshiro256(seed) — exactly the old serial `master.Fork()`.
  constexpr std::uint64_t kSeed = 0xFEED;
  util::Xoshiro256 master(kSeed);
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 40; ++i) {
    util::Xoshiro256 forked = master.Fork();
    expect.push_back(forked());
  }
  std::vector<std::uint64_t> got(expect.size());
  TrialEngine(8).Run<DrawSum>(
      kSeed, expect.size(),
      [&got](std::uint64_t trial, util::Xoshiro256& rng, DrawSum&) {
        got[trial] = rng();
      });
  EXPECT_EQ(got, expect);
}

TEST(EngineConfig, ResolveThreads) {
  EXPECT_EQ(TrialEngine::ResolveThreads(3), 3u);
  EXPECT_GE(TrialEngine::ResolveThreads(0), 1u);
  EXPECT_EQ(TrialEngine(5).threads(), 5u);
}

TEST(EngineWorkingSet, MatchesDocumentedLayout) {
  dram::RankGeometry geometry;
  const auto ws = MakeWorkingSet(geometry, 3, 4, 37, 11);
  ASSERT_EQ(ws.rows.size(), 3u);
  const auto& g = geometry.device;
  EXPECT_EQ(ws.rows[0].bank, 0u);
  EXPECT_EQ(ws.rows[0].row, 11u % g.rows_per_bank);
  EXPECT_EQ(ws.rows[2].bank, 2u % g.banks);
  EXPECT_EQ(ws.rows[2].row, (2u * 37 + 11) % g.rows_per_bank);
  ASSERT_EQ(ws.cols.size(), 4u);
  EXPECT_EQ(ws.cols[0], 0u);
  EXPECT_EQ(ws.cols[1], g.ColumnsPerRow() / 4);
}

}  // namespace
}  // namespace pair_ecc::reliability
