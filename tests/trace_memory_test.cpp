// Constant-memory acceptance test: a multi-gigabyte trace, generated on
// the fly by a procedural ByteSource, flows through StreamingTraceParser
// while a counting global allocator tracks the live-byte high-water mark.
// The whole parse must stay under a small fixed bound — megabytes, not the
// gigabytes the text occupies — or the "constant memory" claim is broken.
//
// The allocator override is process-global, so this test lives in its own
// binary (tests/CMakeLists.txt registers it like any other) and contains
// nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>

#include "timing/request_source.hpp"
#include "util/contract.hpp"
#include "workload/byte_source.hpp"
#include "workload/trace_stream.hpp"

namespace {

// ------------------------------------------------------ counting allocator
//
// Every allocation is over-allocated by a header that records the raw
// malloc pointer and the user size, so frees can subtract exactly what
// news added regardless of alignment. Atomics keep it thread-safe (gtest
// itself is single-threaded here, but the contract is cheap to keep).

std::atomic<std::size_t> g_live_bytes{0};
std::atomic<std::size_t> g_high_water{0};

constexpr std::size_t kHeaderWords = 2;  // [raw pointer][user size]

void* CountedAlloc(std::size_t size, std::size_t align) {
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  const std::size_t slack = kHeaderWords * sizeof(std::uintptr_t) + align;
  void* raw = std::malloc(size + slack);
  if (raw == nullptr) throw std::bad_alloc();
  auto user_addr =
      (reinterpret_cast<std::uintptr_t>(raw) +
       kHeaderWords * sizeof(std::uintptr_t) + align - 1) &
      ~static_cast<std::uintptr_t>(align - 1);
  auto* header = reinterpret_cast<std::uintptr_t*>(user_addr);
  header[-1] = size;
  header[-2] = reinterpret_cast<std::uintptr_t>(raw);
  const std::size_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::size_t high = g_high_water.load(std::memory_order_relaxed);
  while (live > high &&
         !g_high_water.compare_exchange_weak(high, live,
                                             std::memory_order_relaxed)) {
  }
  return reinterpret_cast<void*>(user_addr);
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  auto* header = reinterpret_cast<std::uintptr_t*>(p);
  g_live_bytes.fetch_sub(header[-1], std::memory_order_relaxed);
  std::free(reinterpret_cast<void*>(header[-2]));
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size, 0); }
void* operator new[](std::size_t size) { return CountedAlloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}

namespace pair_ecc::workload {
namespace {

// Emits `target_bytes`-plus of trace text without ever holding more than
// one refill block: "<cycle> R <bank> <row> <col>\n" with the cycle
// advancing a few ticks per line, formatted with to_chars in 64 KiB
// batches.
class SyntheticTraceBytes final : public ByteSource {
 public:
  explicit SyntheticTraceBytes(std::uint64_t target_bytes)
      : target_bytes_(target_bytes) {
    block_.reserve(kBlockBytes + 64);
  }

  std::uint64_t lines_emitted() const noexcept { return lines_; }
  std::uint64_t bytes_emitted() const noexcept { return bytes_; }

  std::size_t Read(char* out, std::size_t max) override {
    std::size_t written = 0;
    while (written < max) {
      if (pos_ >= block_.size()) {
        if (!Refill()) break;
      }
      const std::size_t n =
          std::min(max - written, block_.size() - pos_);
      std::memcpy(out + written, block_.data() + pos_, n);
      pos_ += n;
      written += n;
    }
    return written;
  }

  void Reset() override {
    // The differential tests cover replay; this source is single-pass.
    PAIR_CHECK(bytes_ == 0, "SyntheticTraceBytes: single-pass source");
  }

 private:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  bool Refill() {
    if (bytes_ >= target_bytes_) return false;
    block_.clear();
    pos_ = 0;
    char number[24];
    while (block_.size() < kBlockBytes && bytes_ + block_.size() < target_bytes_) {
      const auto append_number = [&](std::uint64_t value) {
        const auto [end, ec] =
            std::to_chars(number, number + sizeof(number), value);
        (void)ec;
        block_.append(number, static_cast<std::size_t>(end - number));
      };
      append_number(cycle_);
      block_ += (lines_ % 3 == 0) ? " W " : " R ";
      append_number(lines_ % 16);         // bank
      block_ += ' ';
      append_number((lines_ * 37) % 8192);  // row
      block_ += ' ';
      append_number((lines_ * 11) % 128);   // col
      block_ += '\n';
      cycle_ += 3 + (lines_ % 5);
      ++lines_;
    }
    bytes_ += block_.size();
    return !block_.empty();
  }

  std::uint64_t target_bytes_;
  std::uint64_t bytes_ = 0;
  std::uint64_t lines_ = 0;
  std::uint64_t cycle_ = 0;
  std::string block_;
  std::size_t pos_ = 0;
};

TEST(TraceMemory, MultiGigabyteParseStaysUnderSixteenMegabytes) {
  // 2.2 GB of text — far beyond any plausible buffer, small enough to
  // format + parse in seconds.
  constexpr std::uint64_t kTargetBytes = 2'200'000'000ull;
  constexpr std::size_t kBoundBytes = 16ull * 1024 * 1024;

  auto bytes = std::make_unique<SyntheticTraceBytes>(kTargetBytes);
  SyntheticTraceBytes* raw = bytes.get();
  StreamingTraceParser parser(std::move(bytes), "<synthetic>");

  std::uint64_t requests = 0;
  std::uint64_t arrival_sum = 0;
  timing::Request req;
  while (parser.Next(req)) {
    ++requests;
    arrival_sum += req.arrival & 0xff;  // consume the parse, cheaply
  }

  EXPECT_GE(raw->bytes_emitted(), kTargetBytes);
  EXPECT_EQ(requests, raw->lines_emitted());
  EXPECT_GT(arrival_sum, 0u);
  const std::size_t high = g_high_water.load(std::memory_order_relaxed);
  EXPECT_LT(high, kBoundBytes)
      << "high-water " << high << " bytes while parsing "
      << raw->bytes_emitted() << " bytes of trace text";
}

}  // namespace
}  // namespace pair_ecc::workload
