// Scheduler-policy and geometry-preset tests: FCFS really issues in
// arrival order, FR-FCFS stays the default (and reorders when given the
// chance), PRAC injects RFM commands without breaking protocol legality,
// and every named preset yields a coherent geometry/timing pair that the
// schemes and the controller accept.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dram/rank.hpp"
#include "ecc/scheme.hpp"
#include "timing/controller.hpp"
#include "timing/presets.hpp"
#include "timing/request_source.hpp"
#include "timing/scheduler.hpp"
#include "workload/generator.hpp"

namespace pair_ecc::timing {
namespace {

SchemeTiming NoEccTiming(const TimingParams& params) {
  dram::RankGeometry rg;
  dram::Rank rank(rg);
  const auto scheme = ecc::MakeScheme(ecc::SchemeKind::kNoEcc, rank);
  return SchemeTiming::FromPerf(scheme->Perf(), params);
}

// A queue full of same-bank row hits behind a row miss: FR-FCFS promotes
// the hits, strict FCFS must not.
Trace ReorderBait() {
  // All arrive at cycle 0 so the whole set is queued before any pick.
  auto read = [](unsigned row, unsigned col) {
    Request req;
    req.addr = {0, row, col};
    return req;
  };
  Trace trace;
  trace.push_back(read(1, 0));  // opens row 1
  trace.push_back(read(2, 0));  // row miss (conflict)
  for (unsigned i = 0; i < 6; ++i)
    trace.push_back(read(1, 1 + i));  // hits on row 1
  return trace;
}

std::vector<std::uint64_t> IssueOrder(SchedulerKind kind) {
  const TimingParams params = TimingParams::Ddr4_3200();
  Trace trace = ReorderBait();
  VectorSource source(trace);
  Controller ctrl(params, NoEccTiming(params), 16, PagePolicy::kOpen, kind);
  std::vector<std::uint64_t> order;
  const SimStats stats = ctrl.Run(
      source,
      [&order](const Request&, std::uint64_t index) { order.push_back(index); });
  EXPECT_TRUE(ctrl.checker().violations().empty());
  EXPECT_EQ(order.size(), trace.size());
  EXPECT_GT(stats.cycles, 0u);
  return order;
}

TEST(Scheduler, FcfsIssuesStrictlyInArrivalOrder) {
  const auto order = IssueOrder(SchedulerKind::kFcfs);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(order[i - 1], order[i]) << "position " << i;
}

TEST(Scheduler, FrFcfsReordersRowHitsPastAMiss) {
  const auto order = IssueOrder(SchedulerKind::kFrFcfs);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i)
    reordered |= order[i] < order[i - 1];
  EXPECT_TRUE(reordered) << "bait queue should promote row hits";
}

TEST(Scheduler, FrFcfsIsTheDefaultPolicy) {
  const TimingParams params = TimingParams::Ddr4_3200();
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kHotspot;
  wl.num_requests = 2000;
  wl.intensity = 0.2;
  wl.seed = 17;

  auto run = [&](bool explicit_kind) {
    auto trace = workload::Generate(wl);
    VectorSource source(trace);
    if (explicit_kind) {
      Controller ctrl(params, NoEccTiming(params), 16, PagePolicy::kOpen,
                      SchedulerKind::kFrFcfs);
      return ctrl.Run(source);
    }
    Controller ctrl(params, NoEccTiming(params));
    return ctrl.Run(source);
  };
  const SimStats a = run(false);
  const SimStats b = run(true);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.avg_read_latency, b.avg_read_latency);
}

TEST(Scheduler, PracIssuesRfmUnderActivationPressure) {
  const TimingParams params = TimingParams::Ddr4_3200();
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kRandom;  // row misses => many ACTs
  wl.num_requests = 4000;
  wl.intensity = 0.2;
  wl.seed = 23;

  auto run = [&](SchedulerKind kind) {
    auto trace = workload::Generate(wl);
    VectorSource source(trace);
    Controller ctrl(params, NoEccTiming(params), 16, PagePolicy::kOpen, kind);
    const SimStats stats = ctrl.Run(source);
    EXPECT_TRUE(ctrl.checker().violations().empty())
        << ctrl.checker().violations().front();
    return stats;
  };
  const SimStats frfcfs = run(SchedulerKind::kFrFcfs);
  const SimStats prac = run(SchedulerKind::kPrac);
  EXPECT_EQ(frfcfs.rfm_commands, 0u);
  EXPECT_GT(prac.rfm_commands, 0u);
  // RFMs cost cycles; the demand stream itself is identical.
  EXPECT_GE(prac.cycles, frfcfs.cycles);
}

TEST(Scheduler, NamesRoundTrip) {
  for (const auto kind : {SchedulerKind::kFrFcfs, SchedulerKind::kFcfs,
                          SchedulerKind::kPrac})
    EXPECT_EQ(SchedulerKindFromString(ToString(kind)), kind);
  EXPECT_THROW(SchedulerKindFromString("lru"), std::exception);
}

// ------------------------------------------------------------------ presets

TEST(Presets, NamesRoundTripIncludingLongSpellings) {
  for (const auto kind : {GeometryPreset::kDdr4_3200, GeometryPreset::kDdr5_4800,
                          GeometryPreset::kHbm3})
    EXPECT_EQ(GeometryPresetFromString(ToString(kind)), kind);
  EXPECT_EQ(GeometryPresetFromString("ddr4"), GeometryPreset::kDdr4_3200);
  EXPECT_EQ(GeometryPresetFromString("ddr5"), GeometryPreset::kDdr5_4800);
  EXPECT_THROW(GeometryPresetFromString("ddr3"), std::exception);
}

TEST(Presets, Ddr4PresetIsTheHistoricalDefault) {
  const SystemPreset preset = MakePreset(GeometryPreset::kDdr4_3200);
  const TimingParams defaults = TimingParams::Ddr4_3200();
  EXPECT_EQ(preset.timing.tck_ns, defaults.tck_ns);
  EXPECT_EQ(preset.timing.tBL, defaults.tBL);
  EXPECT_EQ(preset.timing.banks, defaults.banks);
  const dram::RankGeometry default_geom;
  EXPECT_EQ(preset.geometry.LineBits(), default_geom.LineBits());
  EXPECT_EQ(preset.geometry.data_devices, default_geom.data_devices);
}

TEST(Presets, Ddr5AndHbm3AreDistinctDesignPoints) {
  const SystemPreset ddr5 = MakePreset(GeometryPreset::kDdr5_4800);
  EXPECT_EQ(ddr5.timing.tBL, 8u);  // BL16 on a DDR bus
  EXPECT_EQ(ddr5.timing.banks, 32u);
  EXPECT_LT(ddr5.timing.tck_ns, 0.5);
  const SystemPreset hbm3 = MakePreset(GeometryPreset::kHbm3);
  EXPECT_LT(hbm3.timing.tck_ns, ddr5.timing.tck_ns);
  EXPECT_NE(hbm3.geometry.LineBits(), 0u);
}

TEST(Presets, EverySchemeRunsOnEveryPreset) {
  for (const auto preset_kind :
       {GeometryPreset::kDdr4_3200, GeometryPreset::kDdr5_4800,
        GeometryPreset::kHbm3}) {
    const SystemPreset preset = MakePreset(preset_kind);
    for (const auto scheme_kind : {ecc::SchemeKind::kSecDed,
                                   ecc::SchemeKind::kXed,
                                   ecc::SchemeKind::kPair4}) {
      dram::RankGeometry geom = preset.geometry;
      dram::Rank rank(geom);
      const auto scheme = ecc::MakeScheme(scheme_kind, rank);
      workload::WorkloadConfig wl;
      wl.num_requests = 500;
      wl.banks = preset.timing.banks;
      wl.seed = 31;
      auto trace = workload::Generate(wl);
      VectorSource source(trace);
      Controller ctrl(preset.timing,
                      SchemeTiming::FromPerf(scheme->Perf(), preset.timing));
      const SimStats stats = ctrl.Run(source);
      EXPECT_TRUE(ctrl.checker().violations().empty())
          << ToString(preset_kind) << "/" << ecc::ToString(scheme_kind) << ": "
          << ctrl.checker().violations().front();
      EXPECT_GT(stats.cycles, 0u);
    }
  }
}

}  // namespace
}  // namespace pair_ecc::timing
