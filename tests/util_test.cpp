// Tests for the utility layer: RNG determinism and distribution sanity,
// BitVec semantics, statistics accumulators and table rendering.
#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <set>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace pair_ecc::util {
namespace {

// ---------------------------------------------------------------- SplitMix64

TEST(SplitMix64, MixMatchesReferenceVectors) {
  // Reference outputs of the standard SplitMix64 for seed 0: the first three
  // operator() results (i.e. Mix(kGamma), Mix(2*kGamma), Mix(3*kGamma)).
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(sm(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(sm(), 0x06C45D188009454Full);
}

TEST(SplitMix64, AtIndexesTheStream) {
  SplitMix64 sm(0x1234);
  for (std::uint64_t i = 0; i < 20; ++i)
    EXPECT_EQ(sm(), SplitMix64::At(0x1234, i)) << "index " << i;
}

TEST(SplitMix64, SatisfiesUniformRandomBitGenerator) {
  static_assert(
      std::uniform_random_bit_generator<SplitMix64>,
      "SplitMix64 must be usable with <random> distributions");
  EXPECT_EQ(SplitMix64::min(), 0u);
  EXPECT_EQ(SplitMix64::max(), ~0ull);
}

TEST(SplitMix64, SeedsXoshiroStateWords) {
  // Xoshiro256's constructor documents its state as the first four outputs
  // of SplitMix64(seed) — the derivation the trial engine's determinism
  // contract (engine.hpp) relies on.
  SplitMix64 sm(99);
  const std::uint64_t w0 = sm(), w1 = sm(), w2 = sm(), w3 = sm();
  // xoshiro256** first output = rotl(s1 * 5, 7) * 9 on the initial state.
  const auto rotl = [](std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  };
  Xoshiro256 rng(99);
  EXPECT_EQ(rng(), rotl(w1 * 5, 7) * 9);
  (void)w0;
  (void)w2;
  (void)w3;
}

// ---------------------------------------------------------------- Xoshiro256

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 100; ++i) differ += (a() != b());
  EXPECT_GT(differ, 90);
}

TEST(Xoshiro256, UniformBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformBelow(bound), bound);
  }
}

TEST(Xoshiro256, UniformBelowCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, UniformDoubleInHalfOpenUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, UniformDoubleMeanNearHalf) {
  Xoshiro256 rng(13);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.UniformDouble());
  EXPECT_NEAR(s.Mean(), 0.5, 0.01);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Xoshiro256, ForkProducesIndependentStream) {
  Xoshiro256 parent(21);
  Xoshiro256 child = parent.Fork();
  int differ = 0;
  for (int i = 0; i < 100; ++i) differ += (parent() != child());
  EXPECT_GT(differ, 90);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  // Must be usable with <random> distributions.
  Xoshiro256 rng(3);
  std::uniform_int_distribution<int> dist(0, 9);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

// -------------------------------------------------------------------- BitVec

TEST(BitVec, StartsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.Popcount(), 0u);
  EXPECT_FALSE(v.AnySet());
}

TEST(BitVec, SetGetFlipRoundTrip) {
  BitVec v(100);
  v.Set(0, true);
  v.Set(63, true);
  v.Set(64, true);
  v.Set(99, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(99));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.Popcount(), 4u);
  v.Flip(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Popcount(), 3u);
}

TEST(BitVec, XorActsAsErrorInjection) {
  BitVec data(72);
  data.Set(3, true);
  BitVec err(72);
  err.Set(3, true);
  err.Set(10, true);
  const BitVec corrupted = data ^ err;
  EXPECT_FALSE(corrupted.Get(3));
  EXPECT_TRUE(corrupted.Get(10));
  // XOR-ing the same error again restores the original.
  EXPECT_EQ(corrupted ^ err, data);
}

TEST(BitVec, SetBitsReturnsAscendingIndices) {
  BitVec v(200);
  for (std::size_t i : {5u, 64u, 70u, 199u}) v.Set(i, true);
  const auto bits = v.SetBits();
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0], 5u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 70u);
  EXPECT_EQ(bits[3], 199u);
}

TEST(BitVec, SliceAndSpliceAreInverse) {
  Xoshiro256 rng(31);
  BitVec v = BitVec::Random(256, rng);
  const BitVec mid = v.Slice(100, 40);
  BitVec copy = v;
  copy.Splice(100, mid);
  EXPECT_EQ(copy, v);
}

TEST(BitVec, GetWordSetWordRoundTrip) {
  BitVec v(128);
  v.SetWord(5, 17, 0x1ABCD);
  EXPECT_EQ(v.GetWord(5, 17), 0x1ABCDull & ((1ull << 17) - 1));
  v.SetWord(60, 10, 0x3FF);
  EXPECT_EQ(v.GetWord(60, 10), 0x3FFull);
}

TEST(BitVec, RandomMasksTailBits) {
  Xoshiro256 rng(37);
  for (std::size_t size : {1u, 7u, 63u, 65u, 127u}) {
    BitVec v = BitVec::Random(size, rng);
    // Popcount must not exceed size (would indicate stray tail bits).
    EXPECT_LE(v.Popcount(), size);
  }
}

TEST(BitVec, EqualityRequiresSameSize) {
  BitVec a(10), b(11);
  EXPECT_FALSE(a == b);
}

TEST(BitVec, ToStringShowsBitZeroFirst) {
  BitVec v(4);
  v.Set(0, true);
  v.Set(2, true);
  EXPECT_EQ(v.ToString(), "1010");
}

// --------------------------------------------------------------------- Stats

TEST(RunningStat, MeanAndVarianceMatchClosedForm) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const auto p = WilsonInterval(3, 1000);
  EXPECT_GT(p.estimate, p.lower);
  EXPECT_LT(p.estimate, p.upper);
  EXPECT_NEAR(p.estimate, 0.003, 1e-12);
}

TEST(WilsonInterval, ZeroSuccessesHasPositiveUpperBound) {
  const auto p = WilsonInterval(0, 1000);
  EXPECT_EQ(p.estimate, 0.0);
  EXPECT_EQ(p.lower, 0.0);
  EXPECT_GT(p.upper, 0.0);
  EXPECT_LT(p.upper, 0.01);
}

TEST(WilsonInterval, ZeroTrialsReturnsZeros) {
  const auto p = WilsonInterval(0, 0);
  EXPECT_EQ(p.estimate, 0.0);
  EXPECT_EQ(p.upper, 0.0);
}

TEST(WilsonInterval, AllSuccessesHasUpperOne) {
  const auto p = WilsonInterval(50, 50);
  EXPECT_EQ(p.estimate, 1.0);
  EXPECT_LT(p.lower, 1.0);
  EXPECT_DOUBLE_EQ(p.upper, 1.0);
}

TEST(Histogram, BinsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.Total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.BinCount(b), 10u);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.BinCount(0), 1u);
  EXPECT_EQ(h.BinCount(3), 1u);
}

// --------------------------------------------------------------------- Table

TEST(Table, AlignsColumnsAndPrintsRule) {
  Table t({"name", "value"});
  t.AddRowValues("alpha", 3.5);
  t.AddRowValues("b", 10);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvHasCommaSeparatedCells) {
  Table t({"a", "b"});
  t.AddRowValues(1, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, SciAndFixedFormatting) {
  EXPECT_EQ(Table::Sci(0.000321, 2), "3.21e-04");
  EXPECT_EQ(Table::Fixed(3.14159, 2), "3.14");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

// ----------------------------------------------------------- atomic_file

TEST(Crc32, MatchesIeeeCheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32Hex("123456789"), "cbf43926");
  EXPECT_EQ(Crc32Hex("").size(), 8u);  // fixed-width, zero-padded
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  const std::uint32_t base = Crc32("checkpoint body");
  EXPECT_NE(Crc32("checkpoint bodz"), base);
  EXPECT_NE(Crc32("checkpoint bod"), base);
}

TEST(AtomicWriteFile, CreatesAndReplaces) {
  const std::string path = ::testing::TempDir() + "pair_util_atomic.txt";
  AtomicWriteFile(path, "first");
  AtomicWriteFile(path, "second");
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "second");
}

TEST(AtomicWriteFile, ThrowsOnUnwritableDirectory) {
  EXPECT_THROW(AtomicWriteFile("/nonexistent_dir_zz/x.json", "body"),
               std::runtime_error);
}

}  // namespace
}  // namespace pair_ecc::util
