// Batch-kernel differential tests: every compiled-in GF kernel variant must
// be bitwise-equal to the scalar oracle, both at the raw span-op level and
// through the RS batch APIs (encode / syndromes / decode) for every code
// shape the schemes use, including expanded siblings. Also pins the
// PAIR_GF_KERNEL dispatch contract (exercised end-to-end by the
// gf_batch_scalar_fallback ctest leg, which reruns this whole binary with
// PAIR_GF_KERNEL=scalar).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/gf_batch.hpp"
#include "rs/rs_code.hpp"
#include "util/rng.hpp"

namespace pair_ecc::gf {
namespace {

using pair_ecc::util::Xoshiro256;

std::vector<Elem> RandomSymbols(const GfField& f, std::size_t count,
                                Xoshiro256& rng) {
  std::vector<Elem> v(count);
  for (auto& s : v) s = static_cast<Elem>(rng.UniformBelow(f.Size()));
  return v;
}

/// Runnable non-scalar kernels on this machine (empty on non-x86 or very
/// old CPUs — the RS-level tests then just pin scalar == scalar).
std::vector<const BatchKernels*> RunnableSimdKernels() {
  std::vector<const BatchKernels*> out;
  for (const BatchKernels* k : CompiledKernels())
    if (k != &ScalarKernels() && KernelRunnable(*k)) out.push_back(k);
  return out;
}

// Span lengths straddling every kernel's vector width, with odd tails.
constexpr std::size_t kSpanLengths[] = {1, 3, 7, 8, 15, 16, 17,
                                        31, 33, 64, 100, 257};

TEST(GfBatchKernelTest, ScalarOpsMatchFieldArithmetic) {
  const GfField& f = GfField::Get(8);
  Xoshiro256 rng(0xBA7C4);
  const BatchKernels& sc = ScalarKernels();
  const auto src = RandomSymbols(f, 64, rng);
  for (Elem c : {Elem{0}, Elem{1}, Elem{0x53}, Elem{0xFF}}) {
    const MulTables t = MakeMulTables(f, c);
    std::vector<Elem> dst(src.size(), 0xAA);
    sc.mul_into(t, src.data(), dst.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
      EXPECT_EQ(dst[i], f.Mul(c, src[i]));
  }
}

TEST(GfBatchKernelTest, EveryRunnableKernelMatchesScalarOnRandomSpans) {
  const GfField& f = GfField::Get(8);
  Xoshiro256 rng(0xD1FF);
  for (const BatchKernels* k : RunnableSimdKernels()) {
    SCOPED_TRACE(k->name);
    ASSERT_TRUE(k->supports_field(f));
    for (std::size_t len : kSpanLengths) {
      for (int round = 0; round < 8; ++round) {
        const Elem c = static_cast<Elem>(rng.UniformBelow(f.Size()));
        const MulTables t = MakeMulTables(f, c);
        const auto src = RandomSymbols(f, len, rng);
        const auto base = RandomSymbols(f, len, rng);

        std::vector<Elem> want(len), got(len);
        ScalarKernels().mul_into(t, src.data(), want.data(), len);
        k->mul_into(t, src.data(), got.data(), len);
        EXPECT_EQ(got, want) << "mul_into c=" << c << " len=" << len;

        want = base;
        got = base;
        ScalarKernels().mul_add_into(t, src.data(), want.data(), len);
        k->mul_add_into(t, src.data(), got.data(), len);
        EXPECT_EQ(got, want) << "mul_add_into c=" << c << " len=" << len;

        want = base;
        got = base;
        ScalarKernels().syndrome_accumulate(t, src.data(), want.data(), len);
        k->syndrome_accumulate(t, src.data(), got.data(), len);
        EXPECT_EQ(got, want) << "syndrome_accumulate c=" << c
                             << " len=" << len;
      }
    }
  }
}

TEST(GfBatchKernelTest, KernelByNameRoundTripsAndRejectsUnknown) {
  for (const BatchKernels* k : CompiledKernels())
    EXPECT_EQ(KernelByName(k->name), k);
  EXPECT_EQ(KernelByName("avx512-unicorn"), nullptr);
  EXPECT_EQ(KernelByName(""), nullptr);
}

TEST(GfBatchKernelTest, DispatchHonorsEnvironmentOverride) {
  const GfField& f = GfField::Get(8);
  // The ctest environment may pin PAIR_GF_KERNEL (the scalar-fallback leg
  // does); whatever it says, SelectKernels must obey it.
  const char* env = std::getenv("PAIR_GF_KERNEL");
  const BatchKernels& picked = SelectKernels(f);
  if (env != nullptr && *env != '\0') {
    const BatchKernels* named = KernelByName(env);
    if (named != nullptr && KernelRunnable(*named) &&
        named->supports_field(f)) {
      EXPECT_EQ(&picked, named);
    } else {
      EXPECT_EQ(&picked, &ScalarKernels());
    }
  } else {
    EXPECT_TRUE(KernelRunnable(picked));
    EXPECT_TRUE(picked.supports_field(f));
  }
}

TEST(GfBatchKernelTest, UnsupportedFieldFallsBackToScalar) {
  // m != 8: no SIMD kernel supports it, dispatch must return the oracle.
  const GfField& f10 = GfField::Get(10);
  EXPECT_EQ(&SelectKernels(f10), &ScalarKernels());
  for (const BatchKernels* k : CompiledKernels()) {
    if (k == &ScalarKernels()) continue;
    EXPECT_FALSE(k->supports_field(f10));
  }
}

// ------------------------------------------------------- RS batch level

struct CodeShape {
  unsigned n, k;
};

/// Every (n, k) the schemes instantiate, plus expanded siblings (the PAIR
/// mechanism): RS(34,32)=pair2, RS(68,64)=pair4, RS(76,64)=DUO.
std::vector<rs::RsCode> AllCodes() {
  std::vector<rs::RsCode> codes;
  for (CodeShape s : {CodeShape{34, 32}, CodeShape{68, 64}, CodeShape{76, 64}})
    codes.push_back(rs::RsCode::Gf256(s.n, s.k));
  codes.push_back(rs::RsCode::Gf256(34, 32).Expanded(64));
  codes.push_back(rs::RsCode::Gf256(68, 64).Expanded(128));
  codes.push_back(rs::RsCode::Gf256(76, 64).Expanded(100));
  return codes;
}

constexpr unsigned kBatchSizes[] = {1, 3, 16, 64};

/// Fills a block with `lines` random data words; returns the backing store.
std::vector<Elem> RandomBlock(const rs::RsCode& code, unsigned lines,
                              Xoshiro256& rng, rs::CodewordBlock& block) {
  std::vector<Elem> store(std::size_t{code.n()} * lines, 0);
  block = rs::CodewordBlock{store.data(), lines, code.n(), lines};
  for (unsigned i = 0; i < code.k(); ++i)
    for (unsigned l = 0; l < lines; ++l)
      block.Row(i)[l] =
          static_cast<Elem>(rng.UniformBelow(code.field().Size()));
  return store;
}

TEST(RsBatchTest, EncodeBatchMatchesPerLineForEveryKernelAndShape) {
  Xoshiro256 rng(0xE2C0DE);
  for (rs::RsCode code : AllCodes()) {
    SCOPED_TRACE("n=" + std::to_string(code.n()) +
                 " k=" + std::to_string(code.k()));
    for (unsigned lines : kBatchSizes) {
      rs::CodewordBlock block;
      auto store = RandomBlock(code, lines, rng, block);

      // Per-line oracle first (scalar EncodeInto on each gathered lane).
      std::vector<std::vector<Elem>> want(lines);
      std::vector<Elem> data(code.k());
      for (unsigned l = 0; l < lines; ++l) {
        for (unsigned i = 0; i < code.k(); ++i) data[i] = block.Row(i)[l];
        want[l].resize(code.n());
        code.EncodeInto(data, want[l]);
      }

      for (const BatchKernels* k : CompiledKernels()) {
        if (!KernelRunnable(*k)) continue;
        SCOPED_TRACE(k->name);
        std::vector<Elem> copy = store;
        rs::CodewordBlock b{copy.data(), lines, code.n(), lines};
        code.UseKernelsForTest(*k);
        code.EncodeBatchInto(b);
        for (unsigned l = 0; l < lines; ++l)
          for (unsigned i = 0; i < code.n(); ++i)
            ASSERT_EQ(b.Row(i)[l], want[l][i])
                << "lane " << l << " pos " << i << " lines=" << lines;
      }
    }
  }
}

TEST(RsBatchTest, SyndromesBatchMatchesPerLineForEveryKernelAndShape) {
  Xoshiro256 rng(0x55D0);
  for (rs::RsCode code : AllCodes()) {
    SCOPED_TRACE("n=" + std::to_string(code.n()) +
                 " k=" + std::to_string(code.k()));
    for (unsigned lines : kBatchSizes) {
      // Corrupt random symbols so syndromes are interesting.
      rs::CodewordBlock block;
      auto store = RandomBlock(code, lines, rng, block);
      code.UseKernelsForTest(ScalarKernels());
      code.EncodeBatchInto(block);
      for (unsigned hit = 0; hit < 2 * lines; ++hit)
        store[rng.UniformBelow(store.size())] ^=
            static_cast<Elem>(1 + rng.UniformBelow(code.field().Size() - 1));

      std::vector<Elem> want(std::size_t{code.r()} * lines);
      std::vector<Elem> lane(code.n()), syn(code.r());
      for (unsigned l = 0; l < lines; ++l) {
        for (unsigned i = 0; i < code.n(); ++i) lane[i] = block.Row(i)[l];
        code.SyndromesInto(lane, syn);
        for (unsigned j = 0; j < code.r(); ++j)
          want[std::size_t{j} * lines + l] = syn[j];
      }

      for (const BatchKernels* k : CompiledKernels()) {
        if (!KernelRunnable(*k)) continue;
        SCOPED_TRACE(k->name);
        code.UseKernelsForTest(*k);
        std::vector<Elem> got(want.size(), 0xAA);
        code.SyndromesBatchInto(block, got);
        ASSERT_EQ(got, want) << "lines=" << lines;
      }
    }
  }
}

TEST(RsBatchTest, DecodeBatchMatchesPerLineForEveryKernelAndShape) {
  Xoshiro256 rng(0xDEC0DE);
  for (rs::RsCode code : AllCodes()) {
    SCOPED_TRACE("n=" + std::to_string(code.n()) +
                 " k=" + std::to_string(code.k()));
    for (unsigned lines : kBatchSizes) {
      rs::CodewordBlock block;
      auto store = RandomBlock(code, lines, rng, block);
      code.UseKernelsForTest(ScalarKernels());
      code.EncodeBatchInto(block);

      // Mix of lane fates: clean, correctable (<= t errors), and heavy
      // (t + 1 errors — usually detected, occasionally miscorrected; the
      // batch path must replicate whatever per-line does, not "fix" it).
      for (unsigned l = 0; l < lines; ++l) {
        const unsigned errs = rng.UniformBelow(code.t() + 2);
        std::set<unsigned> positions;
        while (positions.size() < errs)
          positions.insert(
              static_cast<unsigned>(rng.UniformBelow(code.n())));
        for (unsigned pos : positions)
          block.Row(pos)[l] ^= static_cast<Elem>(
              1 + rng.UniformBelow(code.field().Size() - 1));
      }

      // Per-line oracle on copies.
      std::vector<std::vector<Elem>> want_words(lines);
      std::vector<rs::BatchLineResult> want(lines);
      rs::DecodeScratch oracle_scratch;
      for (unsigned l = 0; l < lines; ++l) {
        want_words[l].resize(code.n());
        for (unsigned i = 0; i < code.n(); ++i)
          want_words[l][i] = block.Row(i)[l];
        const rs::DecodeStatus st =
            code.Decode(want_words[l], {}, oracle_scratch);
        want[l].status = st;
        want[l].corrected = st == rs::DecodeStatus::kCorrected
                                ? oracle_scratch.NumCorrected()
                                : 0;
      }

      for (const BatchKernels* k : CompiledKernels()) {
        if (!KernelRunnable(*k)) continue;
        SCOPED_TRACE(k->name);
        std::vector<Elem> copy = store;
        rs::CodewordBlock b{copy.data(), lines, code.n(), lines};
        code.UseKernelsForTest(*k);
        std::vector<rs::BatchLineResult> got(lines);
        rs::DecodeScratch scratch;
        code.DecodeBatch(b, got, scratch);
        for (unsigned l = 0; l < lines; ++l) {
          ASSERT_EQ(got[l].status, want[l].status) << "lane " << l;
          ASSERT_EQ(got[l].corrected, want[l].corrected) << "lane " << l;
          for (unsigned i = 0; i < code.n(); ++i)
            ASSERT_EQ(b.Row(i)[l], want_words[l][i])
                << "lane " << l << " pos " << i;
        }
      }
    }
  }
}

TEST(RsBatchTest, BatchOfOneIsThePerLinePath) {
  // The per-line API is literally a batch of one — spot-check the layout
  // contract that makes that true (stride 1, lines 1).
  const rs::RsCode code = rs::RsCode::Gf256(68, 64);
  Xoshiro256 rng(0x0B1);
  std::vector<Elem> data(code.k());
  for (auto& s : data)
    s = static_cast<Elem>(rng.UniformBelow(code.field().Size()));
  std::vector<Elem> word(code.n());
  code.EncodeInto(data, word);
  EXPECT_TRUE(code.IsCodeword(word));
  const rs::CodewordBlock one{word.data(), 1, code.n(), 1};
  std::vector<Elem> syn(code.r(), 0xAA);
  code.SyndromesBatchInto(one, syn);
  EXPECT_TRUE(std::all_of(syn.begin(), syn.end(),
                          [](Elem s) { return s == 0; }));
}

}  // namespace
}  // namespace pair_ecc::gf
