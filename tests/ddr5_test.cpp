// DDR5-style geometry (x8, BL16): one column access moves 128 bits, so the
// conventional on-die codeword is written whole (no RMW) and a PAIR symbol
// is half a column. These tests pin down the schemes' behaviour at that
// design point.
#include <gtest/gtest.h>

#include "core/pair_scheme.hpp"
#include "dram/rank.hpp"
#include "ecc/scheme.hpp"
#include "util/rng.hpp"

namespace pair_ecc {
namespace {

using dram::Address;
using dram::Rank;
using dram::RankGeometry;
using ecc::Claim;
using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

RankGeometry Ddr5Rank() {
  RankGeometry rg;
  rg.device = dram::DeviceGeometry::Ddr5x8();
  return rg;
}

TEST(Ddr5Geometry, AccessAndColumnMath) {
  const auto g = dram::DeviceGeometry::Ddr5x8();
  g.Validate();
  EXPECT_EQ(g.AccessBits(), 128u);
  EXPECT_EQ(g.ColumnsPerRow(), 64u);
  EXPECT_EQ(g.PinLineBits(), 1024u);
}

TEST(Ddr5Geometry, LineIsOneKibibit) {
  const auto rg = Ddr5Rank();
  EXPECT_EQ(rg.LineBits(), 1024u);  // 8 devices x 128 bits
}

TEST(Ddr5Iecc, FullCodewordWritesDropTheRmw) {
  auto rg = Ddr5Rank();
  Rank rank(rg);
  auto iecc = ecc::MakeScheme(ecc::SchemeKind::kIecc, rank);
  EXPECT_FALSE(iecc->Perf().write_rmw);  // DDR5: codeword == access
  auto xed = ecc::MakeScheme(ecc::SchemeKind::kXed, rank);
  EXPECT_FALSE(xed->Perf().write_rmw);

  RankGeometry ddr4;
  Rank rank4(ddr4);
  EXPECT_TRUE(ecc::MakeScheme(ecc::SchemeKind::kIecc, rank4)->Perf().write_rmw);
}

TEST(Ddr5Iecc, RoundTripAndSingleBitCorrection) {
  auto rg = Ddr5Rank();
  Rank rank(rg);
  auto scheme = ecc::MakeScheme(ecc::SchemeKind::kIecc, rank);
  Xoshiro256 rng(1);
  const Address addr{0, 3, 17};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  EXPECT_EQ(scheme->ReadLine(addr).data, line);
  rank.device(2).InjectFlip(0, 3, 17 * 128 + 40);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

TEST(Ddr5Pair, SymbolIsHalfAColumnAndStillAligned) {
  auto rg = Ddr5Rank();
  Rank rank(rg);
  core::PairScheme pair(rank, core::PairConfig::Pair4());
  // 1024 pin bits / 8 = 128 symbols, k = 64 -> still 2 codewords per pin;
  // each column contributes TWO symbols per pin (BL16 = 2 bursts of 8).
  EXPECT_EQ(pair.CodewordsPerPin(), 2u);

  Xoshiro256 rng(2);
  const Address addr{0, 4, 9};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  pair.WriteLine(addr, line);
  EXPECT_EQ(pair.ReadLine(addr).data, line);
}

TEST(Ddr5Pair, SixteenBeatBurstSpansTwoSymbolsAndCorrects) {
  // With BL16 a whole-access burst on one pin is exactly 2 aligned symbols
  // of one codeword — PAIR-4's t = 2 still covers it.
  auto rg = Ddr5Rank();
  Rank rank(rg);
  core::PairScheme pair(rank, core::PairConfig::Pair4());
  Xoshiro256 rng(3);
  const Address addr{0, 5, 20};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  pair.WriteLine(addr, line);
  for (unsigned i = 0; i < 16; ++i)
    rank.device(1).InjectFlip(0, 5,
                              dram::PinLineBit(rg.device, 4, 20 * 16 + i));
  const auto r = pair.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

TEST(Ddr5Pair, BurstCrossingColumnBoundaryStillWithinBudget) {
  // A 9-beat burst straddling two columns touches at most 2 adjacent
  // symbols of one codeword (or one symbol each of two codewords at a w
  // boundary) — never more than t anywhere.
  auto rg = Ddr5Rank();
  Rank rank(rg);
  core::PairScheme pair(rank, core::PairConfig::Pair4());
  Xoshiro256 rng(4);
  std::vector<BitVec> lines;
  for (unsigned col : {10u, 11u}) {
    lines.push_back(BitVec::Random(rg.LineBits(), rng));
    pair.WriteLine({0, 6, col}, lines.back());
  }
  // Burst over pin-line indices [10*16+12, +9): last 4 beats of col 10 and
  // first 5 of col 11.
  for (unsigned i = 0; i < 9; ++i)
    rank.device(0).InjectFlip(0, 6,
                              dram::PinLineBit(rg.device, 2, 10 * 16 + 12 + i));
  const auto r10 = pair.ReadLine({0, 6, 10});
  EXPECT_EQ(r10.claim, Claim::kCorrected);
  EXPECT_EQ(r10.data, lines[0]);
  const auto r11 = pair.ReadLine({0, 6, 11});
  EXPECT_EQ(r11.claim, Claim::kCorrected);
  EXPECT_EQ(r11.data, lines[1]);
}

TEST(Ddr5Duo, RejectsGeometryItWasNotSizedFor) {
  // DUO's published configuration is DDR4 x8 BL8 (8 sidecar symbols per
  // column). The constructor must reject the BL16 geometry loudly instead
  // of mis-mapping symbols.
  auto rg = Ddr5Rank();
  Rank rank(rg);
  EXPECT_THROW(ecc::MakeScheme(ecc::SchemeKind::kDuo, rank),
               std::invalid_argument);
}

TEST(Ddr5SecDed, BeatLevelCodeStillFits) {
  auto rg = Ddr5Rank();
  Rank rank(rg);
  auto scheme = ecc::MakeScheme(ecc::SchemeKind::kSecDed, rank);
  Xoshiro256 rng(5);
  const Address addr{0, 7, 30};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(3).InjectFlip(0, 7, 30 * 128 + 77);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

}  // namespace
}  // namespace pair_ecc
