// Tests for the event-driven full-system simulator (src/sim): event-queue
// total order, scrub scheduling, the repair policy's escalation ladder and
// exhaustion path, per-trial determinism, campaign thread invariance
// (byte-identical reports), golden campaign counters, protocol
// cleanliness, and trace-driven runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/pair_scheme.hpp"
#include "dram/rank.hpp"
#include "reliability/telemetry.hpp"
#include "sim/memory_system.hpp"
#include "util/contract.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace pair_ecc::sim {
namespace {

using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, OrdersByCycleThenKindThenInsertion) {
  EventQueue q;
  q.Push(10, EventKind::kDemand, 1);
  q.Push(5, EventKind::kRepair);
  q.Push(10, EventKind::kFaultArrival);
  q.Push(5, EventKind::kScrubStep);
  q.Push(10, EventKind::kDemand, 2);
  ASSERT_EQ(q.Size(), 5u);

  // Cycle 5: scrub (kind 1) before repair (kind 2) despite push order.
  EXPECT_EQ(q.Pop().kind, EventKind::kScrubStep);
  EXPECT_EQ(q.Pop().kind, EventKind::kRepair);
  // Cycle 10: fault first, then the two demand events in insertion order.
  EXPECT_EQ(q.Pop().kind, EventKind::kFaultArrival);
  EXPECT_EQ(q.Pop().payload, 1u);
  EXPECT_EQ(q.Pop().payload, 2u);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, PopOnEmptyIsAContractViolation) {
  EventQueue q;
  EXPECT_THROW(q.Pop(), util::ContractViolation);
  EXPECT_THROW(q.Top(), util::ContractViolation);
}

TEST(EventQueue, InterleavedPushPopKeepsHeapOrder) {
  EventQueue q;
  for (std::uint64_t c : {9u, 3u, 7u, 1u, 5u}) q.Push(c, EventKind::kDemand);
  EXPECT_EQ(q.Pop().cycle, 1u);
  q.Push(2, EventKind::kDemand);
  q.Push(8, EventKind::kDemand);
  std::uint64_t last = 0;
  while (!q.Empty()) {
    const Event e = q.Pop();
    EXPECT_GE(e.cycle, last);
    last = e.cycle;
  }
}

// ------------------------------------------------------------ ScrubScheduler

TEST(ScrubScheduler, RoundRobinsAndCountsSweeps) {
  ScrubConfig cfg;
  cfg.interval_cycles = 100;
  cfg.rows_per_step = 2;
  ScrubScheduler scrub(cfg, 3);
  ASSERT_TRUE(scrub.PatrolEnabled());
  EXPECT_EQ(scrub.Interval(), 100u);

  std::vector<unsigned> rows;
  scrub.NextStep(rows);
  EXPECT_EQ(rows, (std::vector<unsigned>{0, 1}));
  scrub.NextStep(rows);
  EXPECT_EQ(rows, (std::vector<unsigned>{2, 0}));
  scrub.NextStep(rows);
  EXPECT_EQ(rows, (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(scrub.steps(), 3u);
  EXPECT_EQ(scrub.sweeps(), 2u);  // the cursor wrapped twice
}

TEST(ScrubScheduler, DisabledWhenIntervalZero) {
  ScrubScheduler scrub(ScrubConfig{}, 4);
  EXPECT_FALSE(scrub.PatrolEnabled());
  std::vector<unsigned> rows{99};
  scrub.NextStep(rows);
  EXPECT_TRUE(rows.empty());
}

TEST(ScrubScheduler, StepWiderThanWorkingSetClampsToOneSweep) {
  ScrubConfig cfg;
  cfg.interval_cycles = 10;
  cfg.rows_per_step = 100;
  ScrubScheduler scrub(cfg, 3);
  std::vector<unsigned> rows;
  scrub.NextStep(rows);
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(scrub.sweeps(), 1u);
}

// -------------------------------------------------------------- RepairPolicy

TEST(RepairPolicy, FiresOnceAtThresholdAndStaysPending) {
  RepairConfig cfg;
  cfg.due_threshold = 3;
  RepairPolicy policy(cfg, 2);
  ASSERT_TRUE(policy.Enabled());
  EXPECT_FALSE(policy.OnDue(0));
  EXPECT_FALSE(policy.OnDue(0));
  EXPECT_TRUE(policy.OnDue(0));   // third DUE crosses
  EXPECT_FALSE(policy.OnDue(0));  // pending: no double-schedule
  EXPECT_FALSE(policy.OnDue(1));  // other rows keep their own counters
}

TEST(RepairPolicy, DisabledPolicyNeverFires) {
  RepairConfig cfg;
  cfg.due_threshold = 0;
  RepairPolicy policy(cfg, 1);
  EXPECT_FALSE(policy.Enabled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(policy.OnDue(0));
}

TEST(RepairPolicy, NonPairSchemeFallsBackToRowScrub) {
  dram::RankGeometry rg;
  dram::Rank rank(rg);
  auto scheme = ecc::MakeScheme(ecc::SchemeKind::kSecDed, rank);
  RepairConfig cfg;
  cfg.due_threshold = 1;
  RepairPolicy policy(cfg, 1);
  EXPECT_TRUE(policy.OnDue(0));
  policy.Execute(0, *scheme, 0, 1);
  EXPECT_EQ(policy.counters().repairs_attempted, 1u);
  EXPECT_EQ(policy.counters().generic_row_scrubs, 1u);
  EXPECT_EQ(policy.counters().rows_spared, 0u);
  EXPECT_EQ(scheme->counters().scrub_rows, 1u);
  // Execute re-arms the slot: the threshold can trip again.
  EXPECT_TRUE(policy.OnDue(0));
}

TEST(RepairPolicy, PairEscalationMarksSymbols) {
  dram::RankGeometry rg;
  dram::Rank rank(rg);
  core::PairScheme scheme(rank, core::PairConfig::Pair4());
  Xoshiro256 rng(11);
  scheme.WriteLine({0, 1, 0}, BitVec::Random(rg.LineBits(), rng));
  // One stuck cell: march diagnosis marks exactly one symbol, no sparing.
  rank.device(2).SetStuck(0, 1, 100, !rank.device(2).ReadBit(0, 1, 100));
  RepairConfig cfg;
  cfg.due_threshold = 1;
  RepairPolicy policy(cfg, 1);
  policy.Execute(0, scheme, 0, 1);
  EXPECT_EQ(policy.counters().symbols_marked, 1u);
  EXPECT_EQ(policy.counters().rows_spared, 0u);
  EXPECT_EQ(policy.counters().generic_row_scrubs, 0u);
}

TEST(RepairPolicy, SparingExhaustionIsCounted) {
  dram::RankGeometry rg;
  dram::Rank rank(rg);
  core::PairScheme scheme(rank, core::PairConfig::Pair4());
  // Drain every data device's bank-0 spares up front.
  for (unsigned d = 0; d < rank.DataDevices(); ++d)
    for (unsigned i = 0; i < dram::Device::kSpareRowsPerBank; ++i)
      ASSERT_TRUE(rank.device(d).PostPackageRepair(0, 100 + i));
  Xoshiro256 rng(12);
  scheme.WriteLine({0, 1, 0}, BitVec::Random(rg.LineBits(), rng));
  // Whole-pin death: beyond the erasure budget, sparing is the only out.
  for (unsigned i = 0; i < rg.device.PinLineBits(); ++i) {
    const unsigned bit = dram::PinLineBit(rg.device, 3, i);
    rank.device(4).SetStuck(0, 1, bit, !rank.device(4).ReadBit(0, 1, bit));
  }
  RepairConfig cfg;
  cfg.due_threshold = 1;
  RepairPolicy policy(cfg, 1);
  policy.Execute(0, scheme, 0, 1);
  EXPECT_EQ(policy.counters().repairs_attempted, 1u);
  EXPECT_EQ(policy.counters().sparing_exhausted, 1u);
  EXPECT_EQ(policy.counters().rows_spared, 0u);
}

// -------------------------------------------------------------- MemorySystem

SystemConfig TestConfig() {
  SystemConfig cfg;
  cfg.scheme = ecc::SchemeKind::kPair4;
  // Clustered faults at a deliberately brutal rate so the 20-trial golden
  // campaign exercises DUEs, threshold crossings, and repairs.
  cfg.mix = faults::FaultMix::Clustered();
  cfg.faults_per_mcycle = 400.0;
  cfg.scrub.interval_cycles = 3000;
  cfg.repair.due_threshold = 2;
  cfg.repair.repair_latency_cycles = 500;
  cfg.seed = 17;
  cfg.threads = 1;
  return cfg;
}

timing::Trace TestDemand(unsigned requests = 60) {
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kHotspot;
  wl.num_requests = requests;
  wl.intensity = 0.05;
  wl.seed = 5;
  return workload::Generate(wl);
}

TEST(MemorySystem, TrialIsAPureFunctionOfSeed) {
  const SystemConfig cfg = TestConfig();
  const auto demand = TestDemand();
  const auto ws = reliability::MakeWorkingSet(cfg.geometry, cfg.working_rows,
                                              cfg.lines_per_row, 37, 5);
  SystemStats a, b;
  reliability::TrialTelemetry ta, tb;
  {
    Xoshiro256 rng(7);
    MemorySystem system(cfg, ws, demand, rng);
    system.Run(a, ta);
  }
  {
    Xoshiro256 rng(7);
    MemorySystem system(cfg, ws, demand, rng);
    system.Run(b, tb);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a.trials, 1u);
  EXPECT_EQ(a.protocol_violations, 0u);
}

TEST(MemorySystem, HorizonDerivedFromTraceOrExplicit) {
  const auto demand = TestDemand();
  const auto ws = reliability::MakeWorkingSet(dram::RankGeometry{}, 2, 4, 37,
                                              5);
  SystemConfig cfg = TestConfig();
  {
    Xoshiro256 rng(1);
    MemorySystem system(cfg, ws, demand, rng);
    EXPECT_GT(system.horizon(), demand.back().arrival);
  }
  cfg.horizon_cycles = 123456;
  {
    Xoshiro256 rng(1);
    MemorySystem system(cfg, ws, demand, rng);
    EXPECT_EQ(system.horizon(), 123456u);
  }
}

TEST(MemorySystem, ExplicitHorizonTruncatesDemand) {
  const auto demand = TestDemand();
  SystemConfig cfg = TestConfig();
  cfg.faults_per_mcycle = 0.0;  // isolate the demand stream
  cfg.horizon_cycles = demand[demand.size() / 2].arrival;
  const std::size_t in_window = static_cast<std::size_t>(std::count_if(
      demand.begin(), demand.end(), [&](const timing::Request& r) {
        return r.arrival <= cfg.horizon_cycles;
      }));
  ASSERT_LT(in_window, demand.size());
  const SystemStats s = RunSystemCampaign(cfg, demand, 3);
  EXPECT_EQ(s.demand_reads + s.demand_writes, 3 * in_window);
}

TEST(SystemConfig, ValidateRejectsBadShapes) {
  SystemConfig cfg = TestConfig();
  cfg.faults_per_mcycle = -1.0;
  EXPECT_THROW(cfg.Validate(), util::ContractViolation);
  cfg = TestConfig();
  cfg.working_rows = 0;
  EXPECT_THROW(cfg.Validate(), util::ContractViolation);
  cfg = TestConfig();
  cfg.scrub.rows_per_step = 0;
  EXPECT_THROW(cfg.Validate(), util::ContractViolation);
  cfg = TestConfig();
  cfg.timing.banks = 8;  // geometry has 16 banks the timing model lacks
  EXPECT_THROW(cfg.Validate(), util::ContractViolation);
}

TEST(SystemCampaign, RejectsMalformedDemand) {
  SystemConfig cfg = TestConfig();
  timing::Trace demand = TestDemand(10);
  demand[4].addr.bank = cfg.timing.banks;  // out of the timing model's range
  EXPECT_THROW(RunSystemCampaign(cfg, demand, 1), util::ContractViolation);
  demand = TestDemand(10);
  std::swap(demand[2], demand[7]);  // arrival order broken
  EXPECT_THROW(RunSystemCampaign(cfg, demand, 1), util::ContractViolation);
}

// --------------------------------------------------- campaign determinism

TEST(SystemCampaign, BitwiseIdenticalForAnyThreadCount) {
  const auto demand = TestDemand();
  const auto run = [&demand](unsigned threads) {
    SystemConfig cfg = TestConfig();
    cfg.threads = threads;
    reliability::ScenarioTelemetry tel;
    const SystemStats stats = RunSystemCampaign(cfg, demand, 20, &tel);
    return BuildSystemReport(cfg, 20, demand.size(), stats, tel)
        .ToJson(/*include_timing=*/false)
        .Dump();
  };
  const std::string once = run(1);
  EXPECT_EQ(once, run(1));  // same-thread re-run: byte-identical
  EXPECT_EQ(once, run(2));
  EXPECT_EQ(once, run(8));
}

TEST(SystemCampaign, StatsMergeMatchesThreadedRun) {
  const auto demand = TestDemand();
  SystemConfig cfg = TestConfig();
  const SystemStats serial = RunSystemCampaign(cfg, demand, 20);
  cfg.threads = 4;
  const SystemStats threaded = RunSystemCampaign(cfg, demand, 20);
  EXPECT_EQ(serial, threaded);
}

// ------------------------------------------------------------------- golden

TEST(SystemCampaign, GoldenCountersPinned) {
  // Pins the end-to-end behaviour of the coupled simulator for the default
  // test scenario. These values must never change silently: any diff means
  // the fault/scrub/repair/demand interleaving (or the codec underneath)
  // changed semantics.
  const auto demand = TestDemand();
  reliability::ScenarioTelemetry tel;
  const SystemStats s = RunSystemCampaign(TestConfig(), demand, 20, &tel);

  EXPECT_EQ(s.trials, 20u);
  EXPECT_EQ(s.protocol_violations, 0u);
  EXPECT_EQ(s.demand_reads + s.demand_writes, 20 * demand.size());
  EXPECT_EQ(s.no_error + s.corrected + s.due + s.sdc_miscorrected +
                s.sdc_undetected,
            s.demand_reads);
  EXPECT_EQ(s.read_latency.TotalCount(), s.demand_reads);
  // Scrub and march diagnosis decode lines too, so >= rather than ==.
  EXPECT_GE(tel.trial.codec.claim_detected, s.due);

  // GOLDEN: pinned from the first run of this scenario.
  EXPECT_EQ(s.demand_reads, 740u);
  EXPECT_EQ(s.faults_injected, 193u);
  EXPECT_EQ(s.scrub_steps, 140u);
  EXPECT_EQ(s.corrected, 52u);
  EXPECT_EQ(s.due, 22u);
  EXPECT_EQ(s.trials_with_sdc, 4u);
  EXPECT_EQ(s.repair.repairs_attempted, 5u);
  EXPECT_EQ(s.bus_reads, 1340u);
  EXPECT_EQ(s.bus_writes, 1112u);
}

// ------------------------------------------------------------- trace-driven

TEST(SystemCampaign, ReplaysTraceFile) {
  const auto demand =
      workload::ReadTraceFile(std::string(PAIR_TEST_DATA_DIR) +
                              "/tiny_trace.txt");
  const std::size_t reads = static_cast<std::size_t>(
      std::count_if(demand.begin(), demand.end(), [](const timing::Request& r) {
        return r.op == timing::Op::kRead;
      }));
  SystemConfig cfg = TestConfig();
  const SystemStats s = RunSystemCampaign(cfg, demand, 5);
  EXPECT_EQ(s.demand_reads, 5 * reads);
  EXPECT_EQ(s.demand_writes, 5 * (demand.size() - reads));
  EXPECT_EQ(s.protocol_violations, 0u);
}

}  // namespace
}  // namespace pair_ecc::sim
