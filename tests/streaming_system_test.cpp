// Streaming end-to-end differentials: every synthetic stream generator and
// a compressed on-disk trace produce byte-identical SystemStats whether
// the demand is materialized up front (RunSystemCampaign) or pulled
// through the streaming path (RunSystemCampaignStreaming) — at more than
// one thread count, since trial-parallel campaigns re-create the stream
// per trial. Also pins the generators' own determinism contract and the
// streaming constructor's explicit-horizon precondition.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "sim/campaign.hpp"
#include "sim/memory_system.hpp"
#include "timing/request_source.hpp"
#include "util/rng.hpp"
#include "workload/byte_source.hpp"
#include "workload/generator.hpp"
#include "workload/streams.hpp"
#include "workload/trace_io.hpp"
#include "workload/trace_stream.hpp"

namespace pair_ecc::sim {
namespace {

constexpr unsigned kTrials = 6;

SystemConfig BaseConfig() {
  SystemConfig cfg;
  cfg.scheme = ecc::SchemeKind::kPair4;
  cfg.faults_per_mcycle = 200.0;
  cfg.scrub.interval_cycles = 3000;
  cfg.repair.due_threshold = 2;
  cfg.seed = 42;
  cfg.threads = 1;
  return cfg;
}

workload::StreamConfig SmallStream(workload::StreamKind kind) {
  workload::StreamConfig cfg;
  cfg.kind = kind;
  cfg.num_requests = 400;
  cfg.banks = 16;
  cfg.seed = 7;
  return cfg;
}

void ExpectStreamingMatchesMaterialized(const SystemConfig& base,
                                        const timing::Trace& demand,
                                        const RequestSourceFactory& factory,
                                        const char* label) {
  for (const unsigned threads : {1u, 3u}) {
    SystemConfig cfg = base;
    cfg.threads = threads;
    const SystemStats materialized = RunSystemCampaign(cfg, demand, kTrials);
    StreamingDemandInfo info;
    const SystemStats streamed =
        RunSystemCampaignStreaming(cfg, factory, kTrials, nullptr, &info);
    EXPECT_EQ(materialized, streamed)
        << label << " at threads=" << threads;
    EXPECT_EQ(info.requests, demand.size()) << label;
    ASSERT_FALSE(demand.empty());
    EXPECT_GT(info.horizon_cycles, demand.back().arrival) << label;
  }
}

TEST(StreamingCampaign, EverySyntheticGeneratorMatchesMaterialized) {
  for (const auto kind :
       {workload::StreamKind::kTensorStream, workload::StreamKind::kPointerChase,
        workload::StreamKind::kBatchInference}) {
    const workload::StreamConfig stream = SmallStream(kind);
    const timing::Trace demand =
        timing::Materialize(*workload::MakeStream(stream));
    ExpectStreamingMatchesMaterialized(
        BaseConfig(), demand,
        [&stream] { return workload::MakeStream(stream); },
        workload::ToString(kind).c_str());
  }
}

TEST(StreamingCampaign, CompressedTraceFileMatchesMaterialized) {
  if (!workload::GzipSupported()) GTEST_SKIP() << "built without zlib";
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kHotspot;
  wl.num_requests = 300;
  wl.seed = 13;
  const timing::Trace demand = workload::Generate(wl);
  std::stringstream buffer;
  workload::WriteTrace(demand, buffer);
  const std::string path = ::testing::TempDir() + "/pair_system_demand.gz";
  workload::GzipWriteFile(path, buffer.str());

  ExpectStreamingMatchesMaterialized(
      BaseConfig(), demand,
      [path]() -> std::unique_ptr<timing::RequestSource> {
        return workload::OpenTraceStream(path);
      },
      "gzip trace");
}

TEST(StreamingCampaign, ExplicitHorizonMatchesBetweenPaths) {
  // With a caller-pinned horizon neither path derives anything; the two
  // must still agree bitwise.
  const workload::StreamConfig stream =
      SmallStream(workload::StreamKind::kTensorStream);
  const timing::Trace demand =
      timing::Materialize(*workload::MakeStream(stream));
  SystemConfig cfg = BaseConfig();
  cfg.horizon_cycles = demand.back().arrival + 50000;
  ExpectStreamingMatchesMaterialized(
      cfg, demand, [&stream] { return workload::MakeStream(stream); },
      "pinned horizon");
}

// ------------------------------------------------------- stream generators

TEST(SyntheticStreams, DeterministicAndRewindable) {
  for (const auto kind :
       {workload::StreamKind::kTensorStream, workload::StreamKind::kPointerChase,
        workload::StreamKind::kBatchInference}) {
    const workload::StreamConfig cfg = SmallStream(kind);
    const timing::Trace a = timing::Materialize(*workload::MakeStream(cfg));
    const timing::Trace b = timing::Materialize(*workload::MakeStream(cfg));
    ASSERT_EQ(a.size(), cfg.num_requests) << workload::ToString(kind);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].arrival, b[i].arrival) << workload::ToString(kind);
      ASSERT_EQ(a[i].op, b[i].op) << workload::ToString(kind);
      ASSERT_EQ(a[i].addr, b[i].addr) << workload::ToString(kind);
      ASSERT_GE(i == 0 ? a[0].arrival : a[i].arrival,
                i == 0 ? 0 : a[i - 1].arrival)
          << workload::ToString(kind) << " not sorted at " << i;
      ASSERT_LT(a[i].addr.bank, cfg.banks) << workload::ToString(kind);
    }
    // Reset on one instance replays the same sequence.
    auto source = workload::MakeStream(cfg);
    const timing::Trace first = timing::Materialize(*source);
    source->Reset();
    const timing::Trace second = timing::Materialize(*source);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
      ASSERT_EQ(first[i].addr, second[i].addr) << workload::ToString(kind);
  }
}

TEST(SyntheticStreams, SeedChangesTheSequence) {
  workload::StreamConfig a = SmallStream(workload::StreamKind::kPointerChase);
  workload::StreamConfig b = a;
  b.seed = a.seed + 1;
  const timing::Trace ta = timing::Materialize(*workload::MakeStream(a));
  const timing::Trace tb = timing::Materialize(*workload::MakeStream(b));
  bool differs = false;
  for (std::size_t i = 0; i < ta.size() && i < tb.size(); ++i)
    differs |= !(ta[i].addr == tb[i].addr) || ta[i].arrival != tb[i].arrival;
  EXPECT_TRUE(differs);
}

TEST(SyntheticStreams, NamesRoundTripAndConfigValidates) {
  for (const auto kind :
       {workload::StreamKind::kTensorStream, workload::StreamKind::kPointerChase,
        workload::StreamKind::kBatchInference})
    EXPECT_EQ(workload::StreamKindFromString(workload::ToString(kind)), kind);
  EXPECT_THROW(workload::StreamKindFromString("gups"), std::exception);
  workload::StreamConfig cfg;
  cfg.Validate();
  cfg.banks = 0;
  EXPECT_THROW(cfg.Validate(), std::exception);
}

// --------------------------------------------------------- preconditions

TEST(StreamingMemorySystem, RequiresAnExplicitHorizon) {
  SystemConfig cfg = BaseConfig();
  const reliability::WorkingSet ws = MakeSystemWorkingSet(cfg);
  auto source = workload::MakeStream(
      SmallStream(workload::StreamKind::kTensorStream));
  util::Xoshiro256 rng(1);
  EXPECT_THROW(MemorySystem(cfg, ws, *source, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pair_ecc::sim
