// Field-axiom and table-consistency tests for GF(2^m).
#include <gtest/gtest.h>

#include "gf/gf2m.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace pair_ecc::gf {
namespace {

using pair_ecc::util::Xoshiro256;

class GfFieldParamTest : public ::testing::TestWithParam<unsigned> {
 protected:
  const GfField& f() const { return GfField::Get(GetParam()); }
};

TEST_P(GfFieldParamTest, SizeAndOrder) {
  EXPECT_EQ(f().Size(), 1u << GetParam());
  EXPECT_EQ(f().Order(), (1u << GetParam()) - 1);
}

TEST_P(GfFieldParamTest, AdditionIsXor) {
  Xoshiro256 rng(100 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto b = static_cast<Elem>(rng.UniformBelow(f().Size()));
    EXPECT_EQ(f().Add(a, b), a ^ b);
    EXPECT_EQ(f().Sub(a, b), f().Add(a, b));
  }
}

TEST_P(GfFieldParamTest, MultiplicationCommutesAndHasIdentity) {
  Xoshiro256 rng(200 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto b = static_cast<Elem>(rng.UniformBelow(f().Size()));
    EXPECT_EQ(f().Mul(a, b), f().Mul(b, a));
    EXPECT_EQ(f().Mul(a, 1), a);
    EXPECT_EQ(f().Mul(a, 0), 0);
  }
}

TEST_P(GfFieldParamTest, MultiplicationAssociates) {
  Xoshiro256 rng(300 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto b = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto c = static_cast<Elem>(rng.UniformBelow(f().Size()));
    EXPECT_EQ(f().Mul(f().Mul(a, b), c), f().Mul(a, f().Mul(b, c)));
  }
}

TEST_P(GfFieldParamTest, DistributesOverAddition) {
  Xoshiro256 rng(400 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto b = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto c = static_cast<Elem>(rng.UniformBelow(f().Size()));
    EXPECT_EQ(f().Mul(a, f().Add(b, c)),
              f().Add(f().Mul(a, b), f().Mul(a, c)));
  }
}

TEST_P(GfFieldParamTest, EveryNonzeroElementHasInverse) {
  // Exhaustive for small fields, sampled for larger ones.
  const unsigned size = f().Size();
  const unsigned step = size > 4096 ? 13 : 1;
  for (unsigned x = 1; x < size; x += step) {
    const auto e = static_cast<Elem>(x);
    const Elem inv = f().Inv(e);
    EXPECT_EQ(f().Mul(e, inv), 1) << "x=" << x;
    EXPECT_EQ(f().Div(1, e), inv);
  }
}

TEST_P(GfFieldParamTest, DivisionInvertsMultiplication) {
  Xoshiro256 rng(500 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Elem>(rng.UniformBelow(f().Size()));
    const auto b = static_cast<Elem>(1 + rng.UniformBelow(f().Size() - 1));
    EXPECT_EQ(f().Div(f().Mul(a, b), b), a);
  }
}

TEST_P(GfFieldParamTest, AlphaPowersEnumerateAllNonzeroElements) {
  std::vector<bool> seen(f().Size(), false);
  for (unsigned i = 0; i < f().Order(); ++i) {
    const Elem v = f().AlphaPow(i);
    ASSERT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "alpha^" << i << " repeats";
    seen[v] = true;
  }
}

TEST_P(GfFieldParamTest, LogIsInverseOfAlphaPow) {
  for (unsigned i = 0; i < std::min(f().Order(), 2000u); ++i)
    EXPECT_EQ(f().Log(f().AlphaPow(i)), i);
}

TEST_P(GfFieldParamTest, PowMatchesRepeatedMultiplication) {
  Xoshiro256 rng(600 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = static_cast<Elem>(1 + rng.UniformBelow(f().Size() - 1));
    Elem acc = 1;
    for (unsigned e = 0; e < 16; ++e) {
      EXPECT_EQ(f().Pow(x, e), acc);
      acc = f().Mul(acc, x);
    }
  }
}

TEST_P(GfFieldParamTest, FermatLittleTheorem) {
  // x^(2^m - 1) == 1 for all nonzero x.
  Xoshiro256 rng(700 + GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto x = static_cast<Elem>(1 + rng.UniformBelow(f().Size() - 1));
    EXPECT_EQ(f().Pow(x, f().Order()), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFieldSizes, GfFieldParamTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           12u, 16u));

TEST(GfField, ZeroHasNoInverse) {
  const auto& f = GfField::Get(8);
  EXPECT_THROW(f.Inv(0), util::ContractViolation);
  EXPECT_THROW(f.Log(0), util::ContractViolation);
}

#if PAIR_DCHECK_IS_ON
TEST(GfFieldDeathTest, DivisionByZeroAbortsUnderDchecks) {
  // Div is a documented noexcept fast path: the b != 0 precondition is
  // enforced by PAIR_DCHECK (abort), not an exception, so the decoder's
  // inner loop carries no throw machinery.
  const auto& f = GfField::Get(8);
  EXPECT_DEATH(f.Div(5, 0), "division by zero");
}
#endif

TEST(GfField, DivisionIsTotalOverNonzeroDivisorsGf16) {
  // Exhaustive over GF(2^4): for every a and every b != 0, a/b is the unique
  // field element q with q*b == a, and the Div/Inv/Mul identities hold.
  // This is the property coverage backing Div's unchecked fast path.
  const auto& f = GfField::Get(4);
  for (unsigned a = 0; a < f.Size(); ++a) {
    for (unsigned b = 1; b < f.Size(); ++b) {
      const auto ea = static_cast<Elem>(a);
      const auto eb = static_cast<Elem>(b);
      const Elem q = f.Div(ea, eb);
      EXPECT_EQ(f.Mul(q, eb), ea) << "a=" << a << " b=" << b;
      EXPECT_EQ(f.Mul(ea, f.Inv(eb)), q) << "a=" << a << " b=" << b;
      // Uniqueness: q is the only solution of x*b == a.
      for (unsigned x = 0; x < f.Size(); ++x) {
        if (x == q) continue;
        EXPECT_NE(f.Mul(static_cast<Elem>(x), eb), ea)
            << "a=" << a << " b=" << b << " x=" << x;
      }
    }
  }
}

TEST(GfField, PowOfZero) {
  const auto& f = GfField::Get(8);
  EXPECT_EQ(f.Pow(0, 0), 1);  // convention 0^0 = 1
  EXPECT_EQ(f.Pow(0, 5), 0);
}

TEST(GfField, RejectsOutOfRangeM) {
  EXPECT_THROW(GfField(1, 0x3), std::invalid_argument);
  EXPECT_THROW(GfField(17, 0x3), std::invalid_argument);
  EXPECT_THROW(DefaultPrimitivePoly(1), std::invalid_argument);
}

TEST(GfField, RejectsNonPrimitivePolynomial) {
  // x^8 + 1 is not even irreducible.
  EXPECT_THROW(GfField(8, 0x101), std::invalid_argument);
  // x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive (order 5).
  EXPECT_THROW(GfField(4, 0x1F), std::invalid_argument);
}

TEST(GfField, AcceptsAlternatePrimitivePolynomial) {
  // x^8 + x^5 + x^3 + x + 1 (0x12B) is primitive; the field must build and
  // satisfy Fermat.
  const GfField f(8, 0x12B);
  for (unsigned x = 1; x < 256; ++x)
    EXPECT_EQ(f.Pow(static_cast<Elem>(x), 255), 1);
}

TEST(GfField, GetMemoizesInstances) {
  const auto& a = GfField::Get(8);
  const auto& b = GfField::Get(8);
  EXPECT_EQ(&a, &b);
}

TEST(GfField, Gf256KnownProducts) {
  // Spot values for the 0x11D field, cross-checked against standard tables.
  const auto& f = GfField::Get(8);
  EXPECT_EQ(f.Mul(2, 2), 4);
  EXPECT_EQ(f.Mul(0x80, 2), 0x1D);  // overflow wraps through the polynomial
  EXPECT_EQ(f.AlphaPow(0), 1);
  EXPECT_EQ(f.AlphaPow(1), 2);
  EXPECT_EQ(f.AlphaPow(8), 0x1D);
}

}  // namespace
}  // namespace pair_ecc::gf
