// Workload-generator tests: configuration validation, determinism, address
// ranges, read/write mix, arrival pacing, per-pattern locality, and trace
// file round trips.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace pair_ecc::workload {
namespace {

TEST(WorkloadConfig, ValidatesFields) {
  WorkloadConfig cfg;
  cfg.Validate();
  cfg.read_fraction = 1.5;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg = WorkloadConfig{};
  cfg.intensity = 0.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg = WorkloadConfig{};
  cfg.hot_rows = cfg.rows + 1;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg = WorkloadConfig{};
  cfg.num_requests = 0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

TEST(Generator, ProducesRequestedCountSortedByArrival) {
  WorkloadConfig cfg;
  cfg.num_requests = 3000;
  const auto trace = Generate(cfg);
  ASSERT_EQ(trace.size(), 3000u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
}

TEST(Generator, IsDeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.seed = 42;
  const auto a = Generate(cfg);
  const auto b = Generate(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].addr, b[i].addr);
  }
  cfg.seed = 43;
  const auto c = Generate(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = !(a[i].addr == c[i].addr);
  EXPECT_TRUE(differs);
}

TEST(Generator, AddressesStayInRange) {
  for (Pattern p : {Pattern::kStream, Pattern::kRandom, Pattern::kHotspot}) {
    WorkloadConfig cfg;
    cfg.pattern = p;
    cfg.num_requests = 2000;
    cfg.banks = 8;
    cfg.rows = 16;
    cfg.cols = 32;
    for (const auto& req : Generate(cfg)) {
      EXPECT_LT(req.addr.bank, 8u);
      EXPECT_LT(req.addr.row, 16u);
      EXPECT_LT(req.addr.col, 32u);
    }
  }
}

TEST(Generator, ReadFractionIsRespected) {
  WorkloadConfig cfg;
  cfg.num_requests = 20000;
  cfg.read_fraction = 0.25;
  const auto trace = Generate(cfg);
  std::size_t reads = 0;
  for (const auto& req : trace) reads += req.op == timing::Op::kRead;
  EXPECT_NEAR(static_cast<double>(reads) / trace.size(), 0.25, 0.02);
}

TEST(Generator, IntensityControlsArrivalDensity) {
  WorkloadConfig cfg;
  cfg.num_requests = 10000;
  cfg.intensity = 0.1;
  const auto trace = Generate(cfg);
  const double span = static_cast<double>(trace.back().arrival);
  // Mean inter-arrival should be ~1/intensity = 10 cycles.
  EXPECT_NEAR(span / trace.size(), 10.0, 1.5);
}

TEST(Generator, StreamWalksColumnsSequentially) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kStream;
  cfg.num_requests = cfg.banks * 10;
  const auto trace = Generate(cfg);
  // Consecutive requests rotate through banks; the column advances once the
  // bank index wraps.
  for (unsigned i = 0; i + 1 < cfg.banks; ++i) {
    EXPECT_EQ(trace[i].addr.bank, i % cfg.banks);
    EXPECT_EQ(trace[i].addr.col, 0u);
  }
  EXPECT_EQ(trace[cfg.banks].addr.col, 1u);
}

TEST(Generator, HotspotConcentratesTraffic) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kHotspot;
  cfg.num_requests = 20000;
  cfg.hot_rows = 4;
  cfg.hot_fraction = 0.8;
  const auto trace = Generate(cfg);
  std::map<std::pair<unsigned, unsigned>, std::size_t> per_row;
  for (const auto& req : trace) ++per_row[{req.addr.bank, req.addr.row}];
  // The top-4 rows should hold roughly 80% of requests.
  std::vector<std::size_t> counts;
  for (const auto& [row, count] : per_row) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top4 = 0;
  for (std::size_t i = 0; i < 4 && i < counts.size(); ++i) top4 += counts[i];
  EXPECT_GT(static_cast<double>(top4) / trace.size(), 0.7);
}

TEST(Generator, PatternNames) {
  EXPECT_EQ(ToString(Pattern::kStream), "stream");
  EXPECT_EQ(ToString(Pattern::kRandom), "random");
  EXPECT_EQ(ToString(Pattern::kHotspot), "hotspot");
}

// ---------------------------------------------------------- Mapped patterns

TEST(Generator, LinearWalksPhysicalAddressSpace) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kLinear;
  cfg.num_requests = 64;
  cfg.interleave = dram::Interleave::kBankInterleaved;
  const auto trace = Generate(cfg);
  // Bank-interleaved linear: the first `banks` requests rotate banks.
  for (unsigned i = 0; i < cfg.banks; ++i)
    EXPECT_EQ(trace[i].addr.bank, i);
}

TEST(Generator, LinearRowInterleavedIsRowBufferFriendly) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kLinear;
  cfg.num_requests = 128;
  cfg.interleave = dram::Interleave::kRowInterleaved;
  const auto trace = Generate(cfg);
  // First 128 addresses stay in (bank 0, row 0), cols ascending.
  for (unsigned i = 0; i < 128; ++i) {
    EXPECT_EQ(trace[i].addr.bank, 0u);
    EXPECT_EQ(trace[i].addr.row, 0u);
    EXPECT_EQ(trace[i].addr.col, i);
  }
}

TEST(Generator, StridedWithoutHashHammersOneBank) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kStrided;
  cfg.num_requests = 200;
  cfg.interleave = dram::Interleave::kRowInterleaved;
  cfg.stride = cfg.cols * cfg.banks;  // one full row group: same bank forever
  const auto trace = Generate(cfg);
  for (const auto& req : trace) EXPECT_EQ(req.addr.bank, 0u);
}

TEST(Generator, XorHashSpreadsTheSameStride) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kStrided;
  cfg.num_requests = 200;
  cfg.interleave = dram::Interleave::kRowInterleaved;
  cfg.stride = cfg.cols * cfg.banks;
  cfg.xor_bank_hash = true;
  const auto trace = Generate(cfg);
  std::set<unsigned> banks;
  for (const auto& req : trace) banks.insert(req.addr.bank);
  EXPECT_GT(banks.size(), 8u);
}

TEST(Generator, StridedRejectsZeroStride) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kStrided;
  cfg.stride = 0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

TEST(Generator, MappedPatternNames) {
  EXPECT_EQ(ToString(Pattern::kLinear), "linear");
  EXPECT_EQ(ToString(Pattern::kStrided), "strided");
}

// ------------------------------------------------------------------ TraceIO

TEST(TraceIo, RoundTripPreservesEveryField) {
  WorkloadConfig cfg;
  cfg.num_requests = 500;
  cfg.seed = 77;
  const auto trace = Generate(cfg);
  std::stringstream buffer;
  WriteTrace(trace, buffer);
  const auto parsed = ReadTrace(buffer);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].arrival, trace[i].arrival);
    EXPECT_EQ(parsed[i].op, trace[i].op);
    EXPECT_EQ(parsed[i].addr, trace[i].addr);
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# header comment\n"
      "\n"
      "10 R 1 2 3\n"
      "   # indented comment\n"
      "20 W 4 5 6\n");
  const auto trace = ReadTrace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].arrival, 10u);
  EXPECT_EQ(trace[0].op, timing::Op::kRead);
  EXPECT_EQ(trace[1].op, timing::Op::kWrite);
  EXPECT_EQ(trace[1].addr.col, 6u);
}

TEST(TraceIo, AcceptsLowercaseOps) {
  std::stringstream in("0 r 0 0 0\n1 w 0 0 1\n");
  const auto trace = ReadTrace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].op, timing::Op::kRead);
  EXPECT_EQ(trace[1].op, timing::Op::kWrite);
}

TEST(TraceIo, RankColumnIsOptionalOnInputAndPreservedOnOutput) {
  std::stringstream in("0 R 1 2 3\n5 W 1 2 4 2\n");
  const auto trace = ReadTrace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].rank, 0u);  // five-field line defaults to rank 0
  EXPECT_EQ(trace[1].rank, 2u);
  std::stringstream out;
  WriteTrace(trace, out);
  const auto reparsed = ReadTrace(out);
  ASSERT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed[0].rank, 0u);
  EXPECT_EQ(reparsed[1].rank, 2u);
}

TEST(TraceIo, RejectsMalformedLines) {
  {
    std::stringstream in("10 R 1 2\n");  // missing col
    EXPECT_THROW(ReadTrace(in), std::runtime_error);
  }
  {
    std::stringstream in("10 X 1 2 3\n");  // unknown op
    EXPECT_THROW(ReadTrace(in), std::runtime_error);
  }
  {
    std::stringstream in("10 R 1 2 3 4 5\n");  // trailing token after rank
    EXPECT_THROW(ReadTrace(in), std::runtime_error);
  }
  {
    std::stringstream in("10 R 1 2 3 x\n");  // unparsable rank column
    EXPECT_THROW(ReadTrace(in), std::runtime_error);
  }
  {
    std::stringstream in("10 R 1 2 3\n5 R 1 2 3\n");  // out of order
    EXPECT_THROW(ReadTrace(in), std::runtime_error);
  }
}

TEST(TraceIo, ErrorsCarrySourceAndLineNumber) {
  std::stringstream in("0 R 0 0 0\nbogus line here\n");
  try {
    ReadTrace(in, "demand.trace");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("demand.trace:2:"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, FileErrorsNameThePath) {
  const std::string path = ::testing::TempDir() + "/pair_bad_trace.txt";
  {
    std::ofstream os(path);
    os << "# ok comment\n0 R 0 0 0\n7 W 0 0\n";
  }
  try {
    ReadTraceFile(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path + ":3:"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, RoundTripEveryPattern) {
  for (Pattern p : {Pattern::kStream, Pattern::kRandom, Pattern::kHotspot,
                    Pattern::kLinear, Pattern::kStrided}) {
    WorkloadConfig cfg;
    cfg.pattern = p;
    cfg.num_requests = 300;
    cfg.seed = 21;
    const auto trace = Generate(cfg);
    std::stringstream buffer;
    WriteTrace(trace, buffer);
    const auto parsed = ReadTrace(buffer, ToString(p));
    ASSERT_EQ(parsed.size(), trace.size()) << ToString(p);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(parsed[i].arrival, trace[i].arrival) << ToString(p);
      ASSERT_EQ(parsed[i].op, trace[i].op) << ToString(p);
      ASSERT_EQ(parsed[i].addr, trace[i].addr) << ToString(p);
      ASSERT_EQ(parsed[i].rank, trace[i].rank) << ToString(p);
    }
  }
}

TEST(TraceIo, SampleTraceParses) {
  // The checked-in sample the CI smoke job replays through
  // `pairsim system --trace`.
  const auto trace =
      ReadTraceFile(std::string(PAIR_TEST_DATA_DIR) + "/tiny_trace.txt");
  ASSERT_EQ(trace.size(), 40u);
  EXPECT_EQ(trace.front().arrival, 0u);
  EXPECT_EQ(trace.back().arrival, 683u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  for (const auto& req : trace) {
    EXPECT_LT(req.addr.bank, 16u);
    EXPECT_EQ(req.rank, 0u);
  }
}

TEST(TraceIo, AcceptsCrlfAndTrailingWhitespace) {
  std::stringstream in(
      "# exported from Windows tooling\r\n"
      "\r\n"
      "10 R 1 2 3\r\n"
      "20 W 4 5 6   \r\n"
      "30 R 7 8 9\t\n"
      "40 W 1 2 3 1 \t \r\n");
  const auto trace = ReadTrace(in);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].arrival, 10u);
  EXPECT_EQ(trace[1].addr.col, 6u);
  EXPECT_EQ(trace[2].addr.col, 9u);
  EXPECT_EQ(trace[3].rank, 1u);
}

TEST(TraceIo, DiagnosticModeCollectsErrorsAndKeepsGoodLines) {
  std::stringstream in(
      "0 R 0 0 0\n"
      "bogus\n"
      "10 W 1 2 3\n"
      "20 Q 1 2 3\n"
      "30 R 4 5 6\n");
  std::vector<std::string> errors;
  const auto trace = ReadTrace(in, "demand.trace", 8, errors);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[2].arrival, 30u);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("demand.trace:2:"), std::string::npos) << errors[0];
  EXPECT_NE(errors[1].find("demand.trace:4:"), std::string::npos) << errors[1];
}

TEST(TraceIo, DiagnosticModeStopsWhenBudgetExhausted) {
  std::stringstream in(
      "bad one\n"
      "bad two\n"
      "bad three\n"
      "50 R 0 0 0\n");
  std::vector<std::string> errors;
  const auto trace = ReadTrace(in, "t", 2, errors);
  EXPECT_EQ(errors.size(), 2u);   // budget, not the full error count
  EXPECT_TRUE(trace.empty());     // parsing stopped before the good line
}

TEST(TraceIo, DiagnosticModeZeroBudgetStopsImmediately) {
  std::stringstream in("bad\n0 R 0 0 0\n");
  std::vector<std::string> errors;
  const auto trace = ReadTrace(in, "t", 0, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(trace.empty());
}

TEST(TraceIo, FileRoundTrip) {
  WorkloadConfig cfg;
  cfg.num_requests = 100;
  const auto trace = Generate(cfg);
  const std::string path = ::testing::TempDir() + "/pair_trace_test.txt";
  WriteTraceFile(trace, path);
  const auto parsed = ReadTraceFile(path);
  EXPECT_EQ(parsed.size(), trace.size());
  EXPECT_THROW(ReadTraceFile("/nonexistent/dir/trace.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace pair_ecc::workload
