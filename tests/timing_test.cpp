// Timing-simulator tests: closed-form latencies on simple traces, protocol
// compliance across schemes and workloads (the independent checker must
// stay silent), and the directional performance effects of each scheme's
// overhead knobs.
#include <gtest/gtest.h>

#include "ecc/scheme.hpp"
#include "timing/controller.hpp"
#include "workload/generator.hpp"

namespace pair_ecc::timing {
namespace {

using workload::Pattern;
using workload::WorkloadConfig;

SchemeTiming NoOverhead(const TimingParams& t) {
  return SchemeTiming::FromPerf(ecc::PerfDescriptor{}, t);
}

// ------------------------------------------------------------- SchemeTiming

TEST(SchemeTiming, FromPerfConvertsUnits) {
  TimingParams t;
  ecc::PerfDescriptor p;
  p.extra_read_beats = 1;   // half a clock, rounds up
  p.extra_write_beats = 2;  // exactly one clock
  p.write_rmw = true;
  p.read_decode_ns = 1.0;   // 1.0 / 0.625 -> 2 cycles
  p.write_encode_ns = 0.625;
  const auto s = SchemeTiming::FromPerf(p, t);
  EXPECT_EQ(s.read_burst, 5u);
  EXPECT_EQ(s.write_burst, 5u);
  EXPECT_EQ(s.rmw_penalty, 2 * t.tCCD_L);  // internal read + write-back
  EXPECT_EQ(s.read_decode, 2u);
  EXPECT_EQ(s.write_encode, 1u);
}

TEST(SchemeTiming, ZeroOverheadIsBaseline) {
  TimingParams t;
  const auto s = NoOverhead(t);
  EXPECT_EQ(s.read_burst, t.tBL);
  EXPECT_EQ(s.write_burst, t.tBL);
  EXPECT_EQ(s.rmw_penalty, 0u);
  EXPECT_EQ(s.read_decode, 0u);
}

// --------------------------------------------------------------- Controller

TEST(Controller, SingleReadHasClosedFormLatency) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}}};
  const auto stats = ctrl.Run(trace);
  // Idle system: ACT@0, RD@tRCD, data at +tCL, burst tBL.
  EXPECT_EQ(trace[0].issue, t.tRCD);
  EXPECT_EQ(trace[0].complete, t.tRCD + t.tCL + t.tBL);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.row_misses, 1u);
  EXPECT_TRUE(ctrl.checker().violations().empty());
}

TEST(Controller, DecodeLatencyAddsToReadCompletion) {
  TimingParams t;
  ecc::PerfDescriptor p;
  p.read_decode_ns = 2.8;  // ceil(2.8 / 0.625) = 5 cycles
  Controller ctrl(t, SchemeTiming::FromPerf(p, t));
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}}};
  ctrl.Run(trace);
  EXPECT_EQ(trace[0].complete, t.tRCD + t.tCL + t.tBL + 5);
}

TEST(Controller, RowHitSkipsActivation) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}}, {0, Op::kRead, 0, {0, 5, 4}}};
  ctrl.Run(trace);
  // Second read issues tCCD_L after the first, no new ACT.
  EXPECT_EQ(trace[1].issue, trace[0].issue + t.tCCD_L);
  EXPECT_TRUE(ctrl.checker().violations().empty());
}

TEST(Controller, RowConflictPaysPrechargePlusActivate) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  // The second request arrives once row 5 is already open, so it is
  // classified as a conflict at admission.
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}}, {30, Op::kRead, 0, {0, 9, 3}}};
  const auto stats = ctrl.Run(trace);
  EXPECT_EQ(stats.row_conflicts, 1u);
  // The conflicting read cannot issue before tRAS + tRP + tRCD.
  EXPECT_GE(trace[1].issue, t.tRAS + t.tRP + t.tRCD);
  EXPECT_TRUE(ctrl.checker().violations().empty());
}

TEST(Controller, WriteThenReadPaysTurnaround) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  Trace trace = {{0, Op::kWrite, 0, {0, 5, 3}}, {0, Op::kRead, 0, {0, 5, 4}}};
  ctrl.Run(trace);
  // RD must wait tWTR after the write burst ends.
  const std::uint64_t wr_data_end = trace[0].complete;
  EXPECT_GE(trace[1].issue, wr_data_end + t.tWTR);
  EXPECT_TRUE(ctrl.checker().violations().empty());
}

TEST(Controller, FrFcfsPrefersRowHitOverOlderConflict) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  // Open row 5 via the first request; then a conflict (row 9) arrives just
  // before another hit (row 5). The hit should issue first.
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}},
                 {1, Op::kRead, 0, {0, 9, 0}},
                 {2, Op::kRead, 0, {0, 5, 7}}};
  ctrl.Run(trace);
  EXPECT_LT(trace[2].issue, trace[1].issue);
  EXPECT_TRUE(ctrl.checker().violations().empty());
}

TEST(Controller, StatsAccountForEveryRequest) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  WorkloadConfig cfg;
  cfg.num_requests = 5000;
  cfg.pattern = Pattern::kRandom;
  cfg.seed = 7;
  Trace trace = workload::Generate(cfg);
  const auto stats = ctrl.Run(trace);
  EXPECT_EQ(stats.reads + stats.writes, 5000u);
  EXPECT_EQ(stats.row_hits + stats.row_misses + stats.row_conflicts, 5000u);
  EXPECT_GT(stats.avg_read_latency, 0.0);
  EXPECT_GE(stats.p99_read_latency, stats.avg_read_latency);
  EXPECT_GT(stats.bus_utilization, 0.0);
  EXPECT_LE(stats.bus_utilization, 1.0);
  for (const auto& req : trace) {
    EXPECT_GE(req.issue, req.arrival);
    EXPECT_GT(req.complete, req.issue);
  }
}

// Protocol compliance across every scheme x pattern combination.
class ProtocolComplianceTest
    : public ::testing::TestWithParam<std::tuple<ecc::SchemeKind, Pattern>> {};

TEST_P(ProtocolComplianceTest, CheckerStaysSilent) {
  TimingParams t;
  dram::RankGeometry rg;
  dram::Rank rank(rg);
  auto scheme = ecc::MakeScheme(std::get<0>(GetParam()), rank);
  Controller ctrl(t, SchemeTiming::FromPerf(scheme->Perf(), t));
  WorkloadConfig cfg;
  cfg.pattern = std::get<1>(GetParam());
  cfg.num_requests = 8000;
  cfg.read_fraction = 0.5;
  cfg.intensity = 0.2;  // stress the bus
  cfg.seed = 11;
  Trace trace = workload::Generate(cfg);
  ctrl.Run(trace);
  ASSERT_TRUE(ctrl.checker().violations().empty())
      << ctrl.checker().violations().front();
  EXPECT_GT(ctrl.checker().commands_checked(), 8000u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByPatterns, ProtocolComplianceTest,
    ::testing::Combine(
        ::testing::Values(ecc::SchemeKind::kNoEcc, ecc::SchemeKind::kIecc,
                          ecc::SchemeKind::kXed, ecc::SchemeKind::kDuo,
                          ecc::SchemeKind::kPair4,
                          ecc::SchemeKind::kPair4SecDed),
        ::testing::Values(Pattern::kStream, Pattern::kRandom,
                          Pattern::kHotspot)));

// Directional performance properties.

TEST(ControllerDirectional, RmwSlowsWriteHeavyWorkloads) {
  TimingParams t;
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kHotspot;
  cfg.num_requests = 10000;
  cfg.read_fraction = 0.3;  // write heavy
  cfg.intensity = 0.15;
  cfg.seed = 13;

  ecc::PerfDescriptor rmw;
  rmw.write_rmw = true;
  Trace a = workload::Generate(cfg);
  Controller base(t, NoOverhead(t));
  const auto s_base = base.Run(a);
  Trace b = workload::Generate(cfg);
  Controller slow(t, SchemeTiming::FromPerf(rmw, t));
  const auto s_rmw = slow.Run(b);
  EXPECT_GT(s_rmw.cycles, s_base.cycles);
  EXPECT_GT(s_rmw.avg_read_latency, s_base.avg_read_latency);
}

TEST(ControllerDirectional, ExtraBeatsReduceStreamBandwidth) {
  TimingParams t;
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kStream;
  cfg.num_requests = 10000;
  cfg.read_fraction = 1.0;
  cfg.intensity = 0.3;  // saturating
  cfg.seed = 17;

  ecc::PerfDescriptor longer;
  longer.extra_read_beats = 2;  // +1 cycle per burst
  Trace a = workload::Generate(cfg);
  Controller base(t, NoOverhead(t));
  const auto s_base = base.Run(a);
  Trace b = workload::Generate(cfg);
  Controller ext(t, SchemeTiming::FromPerf(longer, t));
  const auto s_ext = ext.Run(b);
  EXPECT_LT(s_ext.BytesPerCycle(), s_base.BytesPerCycle());
}

TEST(ControllerDirectional, DecodeLatencyDoesNotCostBandwidth) {
  // Pure latency adders shift completion but not throughput.
  TimingParams t;
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kStream;
  cfg.num_requests = 8000;
  cfg.read_fraction = 1.0;
  cfg.intensity = 0.3;
  cfg.seed = 19;

  ecc::PerfDescriptor dec;
  dec.read_decode_ns = 5.0;
  Trace a = workload::Generate(cfg);
  Controller base(t, NoOverhead(t));
  const auto s_base = base.Run(a);
  Trace b = workload::Generate(cfg);
  Controller d(t, SchemeTiming::FromPerf(dec, t));
  const auto s_dec = d.Run(b);
  EXPECT_NEAR(s_dec.BytesPerCycle(), s_base.BytesPerCycle(),
              0.01 * s_base.BytesPerCycle());
  EXPECT_GT(s_dec.avg_read_latency, s_base.avg_read_latency);
}

// ----------------------------------------------------------------- Checker

TEST(ProtocolChecker, FlagsActToOpenBank) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kAct, 0, 0, 2, 1000);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_NE(checker.violations()[0].find("open bank"), std::string::npos);
}

TEST(ProtocolChecker, DoubleActViolationIsDiagnosable) {
  // The violation string must carry enough to localise the bug: command,
  // rank, bank, cycle, and the rule name.
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 3, 1, 50);
  checker.OnCommand(Cmd::kAct, 0, 3, 2, 5000);
  ASSERT_EQ(checker.violations().size(), 1u);
  const std::string& v = checker.violations()[0];
  EXPECT_NE(v.find("ACT"), std::string::npos) << v;
  EXPECT_NE(v.find("bank 3"), std::string::npos) << v;
  EXPECT_NE(v.find("@5000"), std::string::npos) << v;
  EXPECT_NE(v.find("open bank"), std::string::npos) << v;
}

TEST(ProtocolChecker, FlagsTccdViolation) {
  // Two CAS commands to the same bank group closer than tCCD_L.
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  const std::uint64_t first = t.tRCD;
  checker.OnCommand(Cmd::kRead, 0, 0, 1, first, first + t.tCL,
                    first + t.tCL + t.tBL);
  const std::uint64_t second = first + t.tCCD_L - 1;
  checker.OnCommand(Cmd::kRead, 0, 0, 1, second, second + t.tCL + 64,
                    second + t.tCL + 64 + t.tBL);
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("tCCD") != std::string::npos;
  EXPECT_TRUE(saw) << (checker.violations().empty()
                           ? "no violations recorded"
                           : checker.violations().front());
  // Same pair spaced exactly tCCD_L apart is legal.
  ProtocolChecker clean(t);
  clean.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  clean.OnCommand(Cmd::kRead, 0, 0, 1, first, first + t.tCL,
                  first + t.tCL + t.tBL);
  const std::uint64_t legal = first + t.tCCD_L;
  clean.OnCommand(Cmd::kRead, 0, 0, 1, legal, legal + t.tCL,
                  legal + t.tCL + t.tBL);
  EXPECT_TRUE(clean.violations().empty())
      << clean.violations().front();
}

TEST(ProtocolChecker, FlagsPrechargeBeforeAct) {
  // PRE to a bank that was never activated: no row to close.
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kPre, 0, 2, 0, 100);
  ASSERT_EQ(checker.violations().size(), 1u);
  const std::string& v = checker.violations()[0];
  EXPECT_NE(v.find("PRE"), std::string::npos) << v;
  EXPECT_NE(v.find("closed bank"), std::string::npos) << v;
  EXPECT_NE(v.find("bank 2"), std::string::npos) << v;
}

TEST(ProtocolChecker, FlagsTrcdViolation) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kRead, 0, 0, 1, t.tRCD - 1, 100, 104);
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].find("tRCD"), std::string::npos);
}

TEST(ProtocolChecker, FlagsWrongRowCas) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kRead, 0, 0, 2, t.tRCD, 100, 104);
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].find("wrong open row"), std::string::npos);
}

TEST(ProtocolChecker, FlagsBusOverlap) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kAct, 0, 1, 1, t.tRRD_L);
  checker.OnCommand(Cmd::kRead, 0, 0, 1, 100, 122, 126);
  checker.OnCommand(Cmd::kRead, 0, 1, 1, 100 + t.tCCD_S + 4, 124, 128);
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("data-bus overlap") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(ProtocolChecker, FlagsTfawViolation) {
  TimingParams t;
  ProtocolChecker checker(t);
  // Five activates tightly packed: the fifth violates tFAW.
  std::uint64_t cycle = 0;
  for (unsigned b = 0; b < 5; ++b) {
    checker.OnCommand(Cmd::kAct, 0, b, 0, cycle);
    cycle += t.tRRD_S;
  }
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("tFAW") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(ProtocolChecker, FlagsPrematurePrecharge) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kPre, 0, 0, 1, t.tRAS - 1);
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("tRAS") != std::string::npos;
  EXPECT_TRUE(saw);
}

// -------------------------------------------------------------- Multi-rank

TEST(MultiRank, RejectsOutOfRangeRank) {
  TimingParams t;  // ranks = 1
  Controller ctrl(t, NoOverhead(t));
  Trace trace = {{0, Op::kRead, 1, {0, 5, 3}}};
  EXPECT_THROW(ctrl.Run(trace), std::invalid_argument);
}

TEST(MultiRank, RankSwitchPaysTcsOnTheBus) {
  TimingParams t;
  t.ranks = 2;
  Controller ctrl(t, NoOverhead(t));
  // Two reads, different ranks, same bank/row index: bank state independent,
  // bursts separated by tCS on the shared bus.
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}}, {0, Op::kRead, 1, {0, 5, 3}}};
  ctrl.Run(trace);
  EXPECT_TRUE(ctrl.checker().violations().empty())
      << ctrl.checker().violations().front();
  // Burst 1 data interval must start >= burst 0 end + tCS.
  const std::uint64_t end0 = trace[0].complete;  // = data end (no decode)
  const std::uint64_t start1 = trace[1].issue + t.tCL;
  EXPECT_GE(start1, end0 + t.tCS);
}

TEST(MultiRank, SameBankIndexDifferentRanksOverlapActivations) {
  // The same (bank, row-conflict) pattern that serialises on one rank
  // pipelines across two: total time strictly shrinks.
  TimingParams t;
  auto build = [](unsigned ranks) {
    Trace trace;
    for (unsigned i = 0; i < 64; ++i)
      trace.push_back(
          {0, Op::kRead, ranks == 1 ? 0u : i % 2, {0, i, 0}});
    return trace;
  };
  Controller one(t, NoOverhead(t));
  Trace t1 = build(1);
  const auto s1 = one.Run(t1);
  TimingParams t2p = t;
  t2p.ranks = 2;
  Controller two(t2p, NoOverhead(t2p));
  Trace t2 = build(2);
  const auto s2 = two.Run(t2);
  EXPECT_TRUE(two.checker().violations().empty());
  EXPECT_LT(s2.cycles, s1.cycles);
}

TEST(MultiRank, FawReliefAcrossRanks) {
  // Eight activates to eight different banks: one rank hits tFAW twice;
  // two ranks (4 ACTs each) hit it never.
  TimingParams t;
  t.enable_refresh = false;
  auto run = [&](unsigned ranks) {
    TimingParams params = t;
    params.ranks = ranks;
    Controller ctrl(params, NoOverhead(params));
    Trace trace;
    for (unsigned i = 0; i < 8; ++i)
      trace.push_back({0, Op::kRead, i % ranks, {i, 1, 0}});
    const auto stats = ctrl.Run(trace);
    EXPECT_TRUE(ctrl.checker().violations().empty());
    return stats.cycles;
  };
  EXPECT_LT(run(2), run(1));
}

TEST(MultiRank, ProtocolCleanUnderLoad) {
  TimingParams t;
  t.ranks = 4;
  Controller ctrl(t, NoOverhead(t), 16, PagePolicy::kOpen);
  WorkloadConfig cfg;
  cfg.ranks = 4;
  cfg.pattern = Pattern::kRandom;
  cfg.num_requests = 10000;
  cfg.read_fraction = 0.5;
  cfg.intensity = 0.25;
  cfg.seed = 53;
  Trace trace = workload::Generate(cfg);
  const auto stats = ctrl.Run(trace);
  ASSERT_TRUE(ctrl.checker().violations().empty())
      << ctrl.checker().violations().front();
  EXPECT_EQ(stats.reads + stats.writes, 10000u);
  EXPECT_GT(stats.refreshes, 0u);
}

TEST(MultiRank, MoreRanksRaiseRandomThroughput) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kRandom;
  cfg.num_requests = 10000;
  cfg.read_fraction = 0.7;
  cfg.intensity = 0.25;  // saturating
  cfg.seed = 59;
  auto run = [&](unsigned ranks) {
    TimingParams params;
    params.ranks = ranks;
    WorkloadConfig wcfg = cfg;
    wcfg.ranks = ranks;
    Controller ctrl(params, NoOverhead(params));
    Trace trace = workload::Generate(wcfg);
    const auto stats = ctrl.Run(trace);
    EXPECT_TRUE(ctrl.checker().violations().empty());
    return stats.cycles;
  };
  EXPECT_LT(run(2), run(1));
}

TEST(MultiRank, GeneratorSpreadsRanks) {
  WorkloadConfig cfg;
  cfg.ranks = 4;
  cfg.pattern = Pattern::kRandom;
  cfg.num_requests = 4000;
  std::vector<unsigned> counts(4, 0);
  for (const auto& req : workload::Generate(cfg)) {
    ASSERT_LT(req.rank, 4u);
    ++counts[req.rank];
  }
  for (unsigned r = 0; r < 4; ++r) EXPECT_GT(counts[r], 700u);
}

TEST(MultiRank, CheckerFlagsTcsViolation) {
  TimingParams t;
  t.ranks = 2;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kAct, 1, 0, 1, t.tRRD_S);
  checker.OnCommand(Cmd::kRead, 0, 0, 1, 100, 122, 126);
  // Next burst from the other rank starts exactly at the previous end:
  // misses the tCS gap.
  checker.OnCommand(Cmd::kRead, 1, 0, 1, 104, 126, 130);
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("tCS") != std::string::npos;
  EXPECT_TRUE(saw);
}

// ------------------------------------------------------------- Page policy

TEST(PagePolicy, ClosedPageHelpsRowReuseFreeStreams) {
  // Random pattern over many rows (negligible reuse): closing rows early
  // hides tRP, so the closed-page controller should finish no later and
  // with lower average read latency.
  TimingParams t;
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kRandom;
  cfg.num_requests = 8000;
  cfg.rows = 64;
  cfg.intensity = 0.08;
  cfg.seed = 41;

  Controller open_ctrl(t, NoOverhead(t), 16, PagePolicy::kOpen);
  Trace ta = workload::Generate(cfg);
  const auto open_stats = open_ctrl.Run(ta);

  Controller closed_ctrl(t, NoOverhead(t), 16, PagePolicy::kClosed);
  Trace tb = workload::Generate(cfg);
  const auto closed_stats = closed_ctrl.Run(tb);

  EXPECT_TRUE(open_ctrl.checker().violations().empty());
  EXPECT_TRUE(closed_ctrl.checker().violations().empty());
  EXPECT_LT(closed_stats.avg_read_latency, open_stats.avg_read_latency);
}

TEST(PagePolicy, OpenPageWinsOnHotspots) {
  TimingParams t;
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kHotspot;
  cfg.num_requests = 8000;
  cfg.hot_rows = 2;
  cfg.hot_fraction = 0.95;
  cfg.intensity = 0.15;
  cfg.seed = 43;

  Controller open_ctrl(t, NoOverhead(t), 16, PagePolicy::kOpen);
  Trace ta = workload::Generate(cfg);
  const auto open_stats = open_ctrl.Run(ta);

  Controller closed_ctrl(t, NoOverhead(t), 16, PagePolicy::kClosed);
  Trace tb = workload::Generate(cfg);
  const auto closed_stats = closed_ctrl.Run(tb);

  EXPECT_TRUE(closed_ctrl.checker().violations().empty());
  EXPECT_LE(open_stats.avg_read_latency, closed_stats.avg_read_latency * 1.2);
  EXPECT_GE(open_stats.row_hits, closed_stats.row_hits);
}

TEST(PagePolicy, ClosedPageStaysProtocolCleanUnderAllSchemes) {
  TimingParams t;
  for (auto kind : {ecc::SchemeKind::kIecc, ecc::SchemeKind::kDuo,
                    ecc::SchemeKind::kPair4}) {
    dram::RankGeometry rg;
    dram::Rank rank(rg);
    auto scheme = ecc::MakeScheme(kind, rank);
    Controller ctrl(t, SchemeTiming::FromPerf(scheme->Perf(), t), 16,
                    PagePolicy::kClosed);
    WorkloadConfig cfg;
    cfg.num_requests = 6000;
    cfg.pattern = Pattern::kRandom;
    cfg.read_fraction = 0.5;
    cfg.intensity = 0.15;
    cfg.seed = 47;
    Trace trace = workload::Generate(cfg);
    ctrl.Run(trace);
    EXPECT_TRUE(ctrl.checker().violations().empty())
        << ecc::ToString(kind) << ": " << ctrl.checker().violations().front();
  }
}

// ----------------------------------------------------------------- Refresh

TEST(Refresh, PeriodicRefIssuedAtExpectedRate) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  WorkloadConfig cfg;
  cfg.num_requests = 20000;
  cfg.pattern = Pattern::kRandom;
  cfg.intensity = 0.05;
  cfg.seed = 23;
  Trace trace = workload::Generate(cfg);
  const auto stats = ctrl.Run(trace);
  ASSERT_TRUE(ctrl.checker().violations().empty())
      << ctrl.checker().violations().front();
  // Roughly one REF per tREFI of simulated time.
  const double expected =
      static_cast<double>(stats.cycles) / static_cast<double>(t.tREFI);
  EXPECT_GT(stats.refreshes, 0u);
  EXPECT_NEAR(static_cast<double>(stats.refreshes), expected,
              expected * 0.25 + 2.0);
}

TEST(Refresh, DisablingRefreshImprovesThroughput) {
  WorkloadConfig cfg;
  cfg.num_requests = 20000;
  cfg.pattern = Pattern::kStream;
  cfg.read_fraction = 1.0;
  cfg.intensity = 0.3;
  cfg.seed = 29;

  TimingParams with_ref;
  Controller a(with_ref, NoOverhead(with_ref));
  Trace ta = workload::Generate(cfg);
  const auto sa = a.Run(ta);

  TimingParams no_ref;
  no_ref.enable_refresh = false;
  Controller b(no_ref, NoOverhead(no_ref));
  Trace tb = workload::Generate(cfg);
  const auto sb = b.Run(tb);

  EXPECT_EQ(sb.refreshes, 0u);
  EXPECT_GT(sa.refreshes, 0u);
  EXPECT_GT(sa.cycles, sb.cycles);
}

TEST(Refresh, ShortTraceSeesNoRefresh) {
  TimingParams t;
  Controller ctrl(t, NoOverhead(t));
  Trace trace = {{0, Op::kRead, 0, {0, 5, 3}}};
  const auto stats = ctrl.Run(trace);
  EXPECT_EQ(stats.refreshes, 0u);  // completes long before the first tREFI
}

TEST(Refresh, ValidateRejectsBadRefreshWindow) {
  TimingParams t;
  t.tRFC = t.tREFI;
  EXPECT_THROW(t.Validate(), std::invalid_argument);
  t.enable_refresh = false;
  EXPECT_NO_THROW(t.Validate());
}

TEST(ProtocolChecker, FlagsRefWithOpenBank) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 3, 1, 0);
  checker.OnCommand(Cmd::kRef, 0, 0, 0, 100);
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("REF with an open bank") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(ProtocolChecker, FlagsActDuringRefresh) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kRef, 0, 0, 0, 0);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, t.tRFC - 1);
  bool saw = false;
  for (const auto& v : checker.violations())
    saw |= v.find("tRFC") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(ProtocolChecker, CleanSequencePassesAllRules) {
  TimingParams t;
  ProtocolChecker checker(t);
  checker.OnCommand(Cmd::kAct, 0, 0, 1, 0);
  checker.OnCommand(Cmd::kRead, 0, 0, 1, t.tRCD, t.tRCD + t.tCL,
                    t.tRCD + t.tCL + t.tBL);
  checker.OnCommand(Cmd::kPre, 0, 0, 1, t.tRAS + 10);
  checker.OnCommand(Cmd::kAct, 0, 0, 2, t.tRAS + 10 + t.tRP);
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_EQ(checker.commands_checked(), 4u);
}

}  // namespace
}  // namespace pair_ecc::timing
