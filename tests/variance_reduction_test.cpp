// Statistical-validation tier for the rare-event acceleration layer
// (reliability/variance_reduction.{hpp,cpp} + sim/splitting.{hpp,cpp}):
//
//   * the weighted estimator is pinned against hand-computed closed forms
//     on a synthetic two-outcome toy model (exact, no sampling),
//   * the tilted sampler's proposal CDF, likelihood weights, and tail
//     masses are pinned against the Poisson pmf directly,
//   * the identity tilt is a no-op at every surface (spec, fingerprint,
//     config hash) — the bitwise-golden contract,
//   * importance sampling agrees with naive Monte-Carlo within 4 sigma in
//     the overlap regime where both can measure the same probability,
//   * multilevel splitting is exact where exactness is provable (leaf
//     weights sum to one, unreachable thresholds reduce to naive trials
//     bitwise) and agrees with naive simulation within 4 sigma elsewhere,
//   * every accumulator merges and JSON-round-trips exactly.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "reliability/campaign.hpp"
#include "reliability/engine.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/telemetry.hpp"
#include "reliability/variance_reduction.hpp"
#include "sim/campaign.hpp"
#include "sim/memory_system.hpp"
#include "sim/splitting.hpp"
#include "telemetry/json.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace pair_ecc::reliability {
namespace {

using telemetry::JsonValue;

double Poisson(double lambda, unsigned n) {
  double pmf = std::exp(-lambda);
  for (unsigned k = 1; k <= n; ++k) pmf *= lambda / static_cast<double>(k);
  return pmf;
}

// ------------------------------------------------------------- estimator

TEST(VarianceReductionEstimator, ToyTwoClassClosedForm) {
  // Two classes, hand-computable: weights {2, 0.5}, 6 + 4 trials, 3 + 1
  // events. Per-trial values are w_c * 1[event], so
  //   estimate = (3*2 + 1*0.5) / 10            = 0.65
  //   S^2      = (3*4 + 1*0.25 - 10*0.65^2)/9  = 8.025/9
  //   Var      = S^2 / 10
  //   ESS      = (6*2 + 4*0.5)^2/(6*4 + 4*0.25) = 196/25 = 7.84
  const std::vector<double> weights = {2.0, 0.5};
  const std::vector<std::uint64_t> trials = {6, 4};
  const std::vector<std::uint64_t> events = {3, 1};
  const WeightedEstimate est =
      EstimateFromClassCounts(weights, trials, events);

  EXPECT_EQ(est.trials, 10u);
  EXPECT_DOUBLE_EQ(est.estimate, 0.65);
  const double s2 = (3 * 4.0 + 1 * 0.25 - 10.0 * 0.65 * 0.65) / 9.0;
  EXPECT_NEAR(est.variance, s2 / 10.0, 1e-15);
  EXPECT_DOUBLE_EQ(est.std_error, std::sqrt(est.variance));
  EXPECT_DOUBLE_EQ(est.ess, 196.0 / 25.0);
  EXPECT_NEAR(est.relative_variance, est.variance / (0.65 * 0.65), 1e-15);
  EXPECT_NEAR(est.naive_equiv_trials, 0.65 * 0.35 / est.variance, 1e-9);
  EXPECT_NEAR(est.acceleration, est.naive_equiv_trials / 10.0, 1e-12);
}

TEST(VarianceReductionEstimator, DegenerateCases) {
  const WeightedEstimate empty = EstimateFromClassCounts({}, {}, {});
  EXPECT_EQ(empty.trials, 0u);
  EXPECT_EQ(empty.estimate, 0.0);
  EXPECT_EQ(empty.variance, 0.0);

  // One trial: the Bessel-corrected sample variance is undefined -> 0.
  const std::vector<double> w = {3.0};
  const std::vector<std::uint64_t> one = {1};
  const WeightedEstimate single = EstimateFromClassCounts(w, one, one);
  EXPECT_EQ(single.trials, 1u);
  EXPECT_DOUBLE_EQ(single.estimate, 3.0);
  EXPECT_EQ(single.variance, 0.0);
  EXPECT_NEAR(single.ess, 1.0, 1e-12);

  // No events: zero estimate, zero variance, no division by the estimate.
  const std::vector<std::uint64_t> none = {0};
  const std::vector<std::uint64_t> five = {5};
  const WeightedEstimate zero = EstimateFromClassCounts(w, five, none);
  EXPECT_EQ(zero.estimate, 0.0);
  EXPECT_EQ(zero.relative_variance, 0.0);
  EXPECT_EQ(zero.naive_equiv_trials, 0.0);
}

// --------------------------------------------------------------- sampler

TiltSpec ForcedTilt(double lambda, double proposal, unsigned min_f,
                    unsigned max_f) {
  TiltSpec tilt;
  tilt.kind = TiltKind::kForced;
  tilt.lambda = lambda;
  tilt.proposal_lambda = proposal;
  tilt.min_faults = min_f;
  tilt.max_faults = max_f;
  return tilt;
}

TEST(VarianceReductionSampler, WeightsAndTailsMatchPoissonClosedForm) {
  const TiltSpec tilt = ForcedTilt(0.5, 2.0, 1, 4);
  const TiltSampler sampler(tilt);

  double window_proposal = 0.0, window_target = 0.0;
  for (unsigned n = 1; n <= 4; ++n) window_proposal += Poisson(2.0, n);
  for (unsigned n = 1; n <= 4; ++n) window_target += Poisson(0.5, n);

  for (unsigned n = 1; n <= 4; ++n) {
    const double q = Poisson(2.0, n) / window_proposal;
    EXPECT_NEAR(sampler.Weight(sampler.ClassOf(n)), Poisson(0.5, n) / q,
                1e-12)
        << "n = " << n;
  }
  EXPECT_NEAR(sampler.TailMassBelow(), Poisson(0.5, 0), 1e-12);
  EXPECT_NEAR(sampler.TailMassAbove(),
              1.0 - Poisson(0.5, 0) - window_target, 1e-12);
  // The three pieces partition the target distribution.
  EXPECT_NEAR(sampler.TailMassBelow() + sampler.TailMassAbove() +
                  window_target,
              1.0, 1e-12);
}

TEST(VarianceReductionSampler, SampleFrequenciesMatchProposal) {
  const TiltSpec tilt = ForcedTilt(0.5, 2.0, 1, 4);
  const TiltSampler sampler(tilt);
  constexpr unsigned kDraws = 20000;

  util::Xoshiro256 rng(123);
  std::vector<unsigned> counts(5, 0);
  for (unsigned i = 0; i < kDraws; ++i) {
    const unsigned n = sampler.Sample(rng);
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, 4u);
    ++counts[n];
  }

  double window = 0.0;
  for (unsigned n = 1; n <= 4; ++n) window += Poisson(2.0, n);
  for (unsigned n = 1; n <= 4; ++n) {
    const double q = Poisson(2.0, n) / window;
    const double sigma = std::sqrt(kDraws * q * (1.0 - q));
    EXPECT_NEAR(counts[n], kDraws * q, 4.0 * sigma) << "n = " << n;
  }
}

TEST(VarianceReductionSampler, SamplingIsDeterministic) {
  const TiltSpec tilt = ForcedTilt(1.0, 3.0, 2, 8);
  const TiltSampler a(tilt);
  const TiltSampler b(tilt);
  util::Xoshiro256 rng_a(7), rng_b(7);
  for (unsigned i = 0; i < 200; ++i)
    ASSERT_EQ(a.Sample(rng_a), b.Sample(rng_b)) << "draw " << i;
}

// ---------------------------------------------- identity / fingerprints

TEST(VarianceReductionIdentity, IdentityTiltIsInactiveAndFingerprintNoOp) {
  const TiltSpec identity;
  EXPECT_FALSE(identity.Active());
  identity.Validate();  // must not throw

  // AddTiltFingerprint must leave untilted fingerprints byte-identical, so
  // pre-IS campaigns keep their config hashes (and checkpoints resume).
  JsonValue fp = JsonValue::MakeObject();
  fp.Set("seed", JsonValue(std::uint64_t{11}));
  const std::string before = fp.Dump();
  AddTiltFingerprint(fp, identity);
  EXPECT_EQ(fp.Dump(), before);

  // A fingerprint without tilt fields reads back as the identity.
  EXPECT_EQ(TiltSpecFromFingerprint(fp), identity);
}

TEST(VarianceReductionIdentity, ActiveTiltRoundTripsThroughFingerprint) {
  const TiltSpec tilt = ForcedTilt(1.6e-5, 2.0, 2, 16);
  JsonValue fp = JsonValue::MakeObject();
  AddTiltFingerprint(fp, tilt);
  EXPECT_EQ(TiltSpecFromFingerprint(fp), tilt);

  SplitSpec split;
  split.thresholds = {1, 2, 4};
  split.replicas = 3;
  JsonValue sp = JsonValue::MakeObject();
  const std::string before = sp.Dump();
  AddSplitFingerprint(sp, SplitSpec{});  // inactive -> no-op
  EXPECT_EQ(sp.Dump(), before);
  AddSplitFingerprint(sp, split);
  EXPECT_EQ(SplitSpecFromFingerprint(sp), split);
  EXPECT_EQ(SplitSpecFromFingerprint(JsonValue::MakeObject()), SplitSpec{});
}

TEST(VarianceReductionIdentity, ValidateRejectsBadSpecs) {
  EXPECT_THROW(ForcedTilt(0.0, 2.0, 1, 4).Validate(), std::runtime_error);
  EXPECT_THROW(ForcedTilt(1.0, -1.0, 1, 4).Validate(), std::runtime_error);
  EXPECT_THROW(ForcedTilt(1.0, 2.0, 5, 4).Validate(), std::runtime_error);
  EXPECT_THROW(ForcedTilt(1.0, 2.0, 1, kMaxTiltFaults + 1).Validate(),
               std::runtime_error);
  EXPECT_THROW(ForcedTilt(1.0, 2.0, 0, 4).Validate(), std::runtime_error);
  EXPECT_THROW(TiltKindFromString("nonsense"), std::runtime_error);

  SplitSpec split;
  split.thresholds = {2, 2};
  EXPECT_THROW(split.Validate(), std::runtime_error);
  split.thresholds = {0};
  EXPECT_THROW(split.Validate(), std::runtime_error);
  split.thresholds = {1};
  split.replicas = 1;
  EXPECT_THROW(split.Validate(), std::runtime_error);
  split.replicas = kMaxSplitReplicas + 1;
  EXPECT_THROW(split.Validate(), std::runtime_error);
  EXPECT_THROW(ParseSplitLevels(""), std::runtime_error);
  EXPECT_THROW(ParseSplitLevels("1,,2"), std::runtime_error);
  EXPECT_THROW(ParseSplitLevels("1,a"), std::runtime_error);
  EXPECT_EQ(ParseSplitLevels("1,2,4"),
            (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_EQ(FormatSplitLevels(std::vector<std::uint64_t>{1, 2, 4}), "1,2,4");
}

// ------------------------------------------------------ importance sampling

ScenarioConfig IsScenario(std::uint64_t seed, unsigned threads = 2) {
  ScenarioConfig cfg;
  cfg.scheme = ecc::SchemeKind::kPair4;
  cfg.faults_per_trial = 2;
  cfg.seed = seed;
  cfg.threads = threads;
  return cfg;
}

TEST(VarianceReductionIs, ThreadCountInvariantAndJsonRoundTrip) {
  const TiltSpec tilt = ForcedTilt(1.0, 2.0, 2, 6);
  const WeightedScenarioState one =
      RunWeightedMonteCarlo(IsScenario(11, /*threads=*/1), tilt, 64);
  const WeightedScenarioState three =
      RunWeightedMonteCarlo(IsScenario(11, /*threads=*/3), tilt, 64);
  EXPECT_EQ(one, three);
  ASSERT_GT(one.tally.TotalTrials(), 0u);

  const WeightedScenarioState back =
      WeightedScenarioStateFromJson(WeightedScenarioStateToJson(one));
  EXPECT_EQ(back, one);
  EXPECT_EQ(WeightedTallyFromJson(WeightedTallyToJson(one.tally)), one.tally);
}

TEST(VarianceReductionIs, DegenerateWindowMatchesNaiveWithinFourSigma) {
  // A [2, 2] window forces every trial to 2 faults, so the tilted run
  // measures the same conditional P(fail | 2 faults) as the naive engine
  // with faults_per_trial = 2 — the overlap regime where both estimators
  // see the same physics. Weights are then the constant pi_lambda(2).
  constexpr unsigned kTrials = 240;
  const TiltSpec tilt = ForcedTilt(1.0, 1.0, 2, 2);
  const WeightedScenarioState state =
      RunWeightedMonteCarlo(IsScenario(21), tilt, kTrials);
  const TiltSampler sampler(tilt);
  const WeightedEstimate est =
      EstimateWeightedRate(sampler, state.tally, WeightedEvent::kFailure);

  // Exactness first: one class, so the estimate factors into the constant
  // weight times the empirical conditional failure rate, and the Kish ESS
  // equals the trial count.
  ASSERT_EQ(state.tally.trials.size(), 1u);
  const double w = sampler.Weight(0);
  EXPECT_NEAR(w, Poisson(1.0, 2), 1e-12);
  EXPECT_DOUBLE_EQ(
      est.estimate,
      w * static_cast<double>(state.tally.failures[0]) / kTrials);
  EXPECT_NEAR(est.ess, kTrials, 1e-6);

  // Statistical agreement with an independent naive run of the same size.
  const OutcomeCounts naive = RunMonteCarlo(IsScenario(22), kTrials);
  const double p_naive = naive.TrialFailureRate();
  const double p_is = est.estimate / w;
  const double sigma =
      std::sqrt(2.0 * p_naive * (1.0 - p_naive) / kTrials);
  EXPECT_NEAR(p_is, p_naive, 4.0 * sigma)
      << "conditional P(fail|2) disagrees: IS " << p_is << " naive "
      << p_naive;
}

TEST(VarianceReductionIs, DifferentProposalsAgreeWithinFourSigma) {
  // Two proposals over the same window estimate the same window-restricted
  // probability; disagreement beyond combined 4 sigma means the weights are
  // wrong, not the sampling.
  constexpr unsigned kTrials = 240;
  const TiltSpec a = ForcedTilt(0.5, 2.0, 2, 6);
  const TiltSpec b = ForcedTilt(0.5, 4.0, 2, 6);
  const WeightedScenarioState sa =
      RunWeightedMonteCarlo(IsScenario(31), a, kTrials);
  const WeightedScenarioState sb =
      RunWeightedMonteCarlo(IsScenario(32), b, kTrials);
  const WeightedEstimate ea = EstimateWeightedRate(
      TiltSampler(a), sa.tally, WeightedEvent::kFailure);
  const WeightedEstimate eb = EstimateWeightedRate(
      TiltSampler(b), sb.tally, WeightedEvent::kFailure);
  ASSERT_GT(ea.estimate, 0.0);
  ASSERT_GT(eb.estimate, 0.0);
  const double sigma =
      std::sqrt(ea.variance + eb.variance);
  EXPECT_NEAR(ea.estimate, eb.estimate, 4.0 * sigma);
}

TEST(VarianceReductionIs, TallyMergeIsExact) {
  const TiltSpec tilt = ForcedTilt(1.0, 2.0, 2, 6);
  const WeightedScenarioState whole =
      RunWeightedMonteCarlo(IsScenario(41), tilt, 64);

  // Shard-order merge of engine halves must reproduce the one-shot state:
  // the engine's 16-trial shards make trials [0, 32) and [32, 64) exact
  // shard boundaries.
  const ScenarioConfig cfg = IsScenario(41);
  const TiltSampler sampler(tilt);
  const WorkingSet ws = MakeScenarioWorkingSet(cfg);
  const TrialEngine engine(cfg.threads);
  WeightedScenarioState merged;
  for (const auto& range : {std::pair<std::uint64_t, std::uint64_t>{0, 2},
                            std::pair<std::uint64_t, std::uint64_t>{2, 4}}) {
    engine.RunShardsObserved<WeightedScenarioState, ScenarioScratch>(
        cfg.seed, 64, range.first, range.second,
        [&](std::uint64_t, util::Xoshiro256& rng, WeightedScenarioState& acc,
            ScenarioScratch& scratch) {
          RunWeightedScenarioTrial(cfg, sampler, ws, rng, acc, scratch);
        },
        [&](std::uint64_t, const WeightedScenarioState& result) {
          merged += result;
        });
  }
  EXPECT_EQ(merged, whole);
}

// ------------------------------------------------------------- splitting

sim::SystemConfig SplitSystemConfig(std::uint64_t seed) {
  sim::SystemConfig cfg;
  cfg.scheme = ecc::SchemeKind::kSecDed;
  cfg.faults_per_mcycle = 200.0;
  cfg.seed = seed;
  cfg.threads = 1;
  return cfg;
}

timing::Trace SplitDemand(const sim::SystemConfig& cfg, unsigned requests) {
  workload::WorkloadConfig wl;
  wl.num_requests = requests;
  wl.intensity = 0.05;
  wl.seed = cfg.seed;
  return workload::Generate(wl);
}

TEST(VarianceReductionSplit, UnreachableThresholdReducesToNaiveExactly) {
  // With a threshold no trial can reach, every splitting tree is a single
  // root node replaying the naive trial's RNG stream — so per-seed failure
  // flags must match the full simulator bit for bit, and the estimate is
  // the plain failure frequency.
  const sim::SystemConfig cfg = SplitSystemConfig(5);
  const timing::Trace demand = SplitDemand(cfg, 80);
  const reliability::WorkingSet ws = sim::MakeSystemWorkingSet(cfg);
  SplitSpec split;
  split.thresholds = {1'000'000'000};
  split.replicas = 2;
  constexpr unsigned kTrials = 24;

  sim::SystemStats naive_stats;
  TrialTelemetry naive_tel;
  SplitTally tally;
  for (unsigned i = 0; i < kTrials; ++i) {
    const std::uint64_t seed = 1000 + i;
    util::Xoshiro256 rng(seed);
    sim::MemorySystem(cfg, ws, demand, rng).Run(naive_stats, naive_tel);
    sim::RunSplitTrial(cfg, ws, demand, split, seed, tally);
  }

  EXPECT_EQ(tally.root_trials, kTrials);
  EXPECT_EQ(tally.nodes, kTrials);
  EXPECT_EQ(tally.splits, 0u);
  EXPECT_EQ(tally.leaves[0], kTrials);
  EXPECT_EQ(tally.failures[0], naive_stats.trials_with_failure);
  EXPECT_EQ(tally.sdc[0], naive_stats.trials_with_sdc);
  EXPECT_EQ(tally.due[0], naive_stats.trials_with_due);

  const WeightedEstimate est = EstimateSplitRate(split, tally);
  EXPECT_DOUBLE_EQ(
      est.estimate,
      static_cast<double>(naive_stats.trials_with_failure) / kTrials);
}

TEST(VarianceReductionSplit, LeafWeightsSumToOnePerRootTrial) {
  // Every tree's leaf weights (replicas^-depth) must sum to exactly 1 —
  // the unbiasedness invariant — regardless of how many splits fired.
  const sim::SystemConfig cfg = SplitSystemConfig(6);
  const timing::Trace demand = SplitDemand(cfg, 150);
  const reliability::WorkingSet ws = sim::MakeSystemWorkingSet(cfg);
  SplitSpec split;
  split.thresholds = {1, 2, 4};
  split.replicas = 3;

  SplitTally tally;
  for (unsigned i = 0; i < 24; ++i)
    sim::RunSplitTrial(cfg, ws, demand, split, 2000 + i, tally);

  ASSERT_GT(tally.splits, 0u) << "thresholds never fired; raise the rate";
  double weighted_leaves = 0.0;
  double rinv = 1.0;
  for (std::size_t d = 0; d < tally.leaves.size(); ++d) {
    weighted_leaves += static_cast<double>(tally.leaves[d]) * rinv;
    rinv /= split.replicas;
  }
  EXPECT_NEAR(weighted_leaves, static_cast<double>(tally.root_trials), 1e-9);
}

TEST(VarianceReductionSplit, EstimateMatchesNaiveWithinFourSigma) {
  const sim::SystemConfig cfg = SplitSystemConfig(7);
  const timing::Trace demand = SplitDemand(cfg, 150);
  const reliability::WorkingSet ws = sim::MakeSystemWorkingSet(cfg);
  SplitSpec split;
  split.thresholds = {1, 2, 4};
  split.replicas = 3;
  constexpr unsigned kTrials = 150;

  sim::SystemStats naive_stats;
  TrialTelemetry naive_tel;
  for (unsigned i = 0; i < kTrials; ++i) {
    util::Xoshiro256 rng(10'000 + i);
    sim::MemorySystem(cfg, ws, demand, rng).Run(naive_stats, naive_tel);
  }
  const double p_naive =
      static_cast<double>(naive_stats.trials_with_failure) / kTrials;

  SplitTally tally;
  for (unsigned i = 0; i < kTrials; ++i)
    sim::RunSplitTrial(cfg, ws, demand, split, 20'000 + i, tally);
  const WeightedEstimate est = EstimateSplitRate(split, tally);

  ASSERT_GT(naive_stats.trials_with_failure, 0u);
  ASSERT_GT(est.estimate, 0.0);
  const double sigma = std::sqrt(
      p_naive * (1.0 - p_naive) / kTrials + est.variance);
  EXPECT_NEAR(est.estimate, p_naive, 4.0 * sigma)
      << "split " << est.estimate << " +/- " << est.std_error << " vs naive "
      << p_naive;
}

TEST(VarianceReductionSplit, TreesAreDeterministicAndMergeIsExact) {
  const sim::SystemConfig cfg = SplitSystemConfig(8);
  const timing::Trace demand = SplitDemand(cfg, 150);
  const reliability::WorkingSet ws = sim::MakeSystemWorkingSet(cfg);
  SplitSpec split;
  split.thresholds = {1, 3};
  split.replicas = 4;

  SplitTally whole, again, first, second;
  for (unsigned i = 0; i < 16; ++i) {
    sim::RunSplitTrial(cfg, ws, demand, split, 3000 + i, whole);
    sim::RunSplitTrial(cfg, ws, demand, split, 3000 + i, again);
    sim::RunSplitTrial(cfg, ws, demand, split, 3000 + i,
                       i < 8 ? first : second);
  }
  EXPECT_EQ(again, whole);  // same seeds -> bitwise identical trees

  SplitTally merged = first;
  merged += second;
  EXPECT_EQ(merged, whole);  // += is exact integer addition, any split point

  const SplitTally back = SplitTallyFromJson(SplitTallyToJson(whole));
  EXPECT_EQ(back, whole);
}

}  // namespace
}  // namespace pair_ecc::reliability
