// Monte-Carlo vs analytic cross-check (reliability/analytic.cpp).
//
// The simulator and the closed-form model are independent implementations
// of the same physics; here each validates the other on a configuration
// where the analytic answer is exact:
//
//   * IECC (SEC Hamming (136,128) per 128-bit word), one working row,
//     single-bit transient faults only. A row of `row_bits` data +
//     `spare_row_bits` parity is exactly words_per_row codewords of 136
//     bits, and the injector draws (device, bit) uniformly — so the faults
//     are balls thrown uniformly into data_devices * words_per_row bins,
//     and a trial fails iff some bin holds >= 2 (SEC corrects any single
//     error). TrialFailureRate must match ProbMaxOccupancyAtLeast within
//     binomial sampling error at the pinned seed.
//   * Given a double-error codeword, the SEC decoder miscorrects (SDC)
//     with probability DoubleErrorMiscorrectionRate() and detects (DUE)
//     otherwise — so the simulator's SDC share of failures must track the
//     exhaustive Hamming rate.
//
// Model error terms (two faults cancelling on one bit, weight-3 parity-only
// codewords) are O(1e-3) here, far below the statistical tolerance.
#include <gtest/gtest.h>

#include <cmath>

#include "hamming/hamming.hpp"
#include "reliability/analytic.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/telemetry.hpp"
#include "reliability/variance_reduction.hpp"
#include "util/rng.hpp"

namespace pair_ecc::reliability {
namespace {

constexpr unsigned kTrials = 600;
constexpr unsigned kFaults = 16;

ScenarioConfig CrosscheckConfig() {
  ScenarioConfig cfg;
  cfg.scheme = ecc::SchemeKind::kIecc;
  // Small rows keep the run fast while every column is read back, so no
  // double-error codeword can hide from classification: 2048-bit rows are
  // 16 words of 128 data bits, the 128-bit spare region holds exactly their
  // 16 x 8 parity bits, and 32 lines cover all 32 columns.
  cfg.geometry.device.row_bits = 2048;
  cfg.geometry.device.spare_row_bits = 128;
  cfg.geometry.ecc_devices = 0;  // all faults land in IECC-covered devices
  cfg.mix = faults::FaultMix{1.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                             /*permanent_fraction=*/0.0};
  cfg.faults_per_trial = kFaults;
  cfg.working_rows = 1;
  cfg.lines_per_row = 32;
  cfg.seed = 0xC405C;
  cfg.threads = 1;
  return cfg;
}

TEST(AnalyticCrosscheck, IeccFailureRateMatchesOccupancyModel) {
  const ScenarioConfig cfg = CrosscheckConfig();
  const unsigned words_per_row = cfg.geometry.device.row_bits / 128;
  const unsigned bins = cfg.geometry.data_devices * words_per_row;  // 128

  ScenarioTelemetry tel;
  const OutcomeCounts counts = RunMonteCarlo(cfg, kTrials, &tel);

  // Telemetry sanity: the injected mix is exactly what was configured.
  EXPECT_EQ(tel.trial.injection.total,
            static_cast<std::uint64_t>(kTrials) * kFaults);
  EXPECT_EQ(tel.trial.injection.permanent, 0u);
  EXPECT_EQ(tel.trial.codec.decodes, counts.reads);

  const double expected = ProbMaxOccupancyAtLeast(bins, kFaults, 2);
  const double observed = counts.TrialFailureRate();
  // Binomial sampling noise at the pinned seed; 4 sigma plus the O(1e-3)
  // model error keeps this deterministic test far from its threshold.
  const double sigma = std::sqrt(expected * (1.0 - expected) / kTrials);
  EXPECT_NEAR(observed, expected, 4.0 * sigma + 0.005)
      << "expected " << expected << " +- " << sigma;
}

TEST(AnalyticCrosscheck, SdcShareTracksHammingMiscorrectionRate) {
  const OutcomeCounts counts = RunMonteCarlo(CrosscheckConfig(), kTrials);
  ASSERT_GT(counts.trials_with_failure, 100u)
      << "configuration no longer produces enough failures to resolve the "
         "ratio";

  const double miscorrect =
      hamming::HammingCode::OnDie136().DoubleErrorMiscorrectionRate();
  const double observed =
      static_cast<double>(counts.trials_with_sdc) /
      static_cast<double>(counts.trials_with_failure);
  // Trials with several double-error words push the SDC share slightly
  // above the single-word rate; 0.1 covers that plus sampling noise.
  EXPECT_NEAR(observed, miscorrect, 0.1);
}

TEST(AnalyticCrosscheck, OccupancyModelAgreesWithDirectSimulation) {
  // ProbMaxOccupancyAtLeast is exact (EGF identity); a direct balls-in-bins
  // simulation pins the combinatorics independently of the DRAM stack.
  constexpr unsigned kBins = 128, kBalls = 16, kRounds = 4000;
  util::Xoshiro256 rng(0x0CC0);
  unsigned hits = 0;
  for (unsigned round = 0; round < kRounds; ++round) {
    unsigned occupancy[kBins] = {};
    bool collision = false;
    for (unsigned b = 0; b < kBalls; ++b)
      collision |= ++occupancy[rng.UniformBelow(kBins)] >= 2;
    hits += collision;
  }
  const double expected = ProbMaxOccupancyAtLeast(kBins, kBalls, 2);
  const double observed = static_cast<double>(hits) / kRounds;
  const double sigma = std::sqrt(expected * (1.0 - expected) / kRounds);
  EXPECT_NEAR(observed, expected, 4.0 * sigma);
}

// ---- importance-sampled tail cross-checks --------------------------------
//
// At realistic fault rates (lambda ~ 1e-5 faults per trial window) the
// per-trial failure probability sits near 1e-12 — naive Monte-Carlo would
// need ~1e13 trials to see a single failure. The forced-fault-count tilt
// spends every trial inside the window that carries the tail mass and
// reweights by the exact Poisson likelihood ratio, so a few thousand
// trials pin the same analytic occupancy answer the unaccelerated tests
// pin at p ~ 0.5. These are the acceptance tests for the rare-event layer:
// the IS estimate must agree with the closed form within 4 sigma AND
// deliver >= 100x naive-equivalent acceleration.

/// P(some bin >= 2 | n faults, n ~ Poisson(lambda) restricted to
/// [min_f, max_f]) — the window-restricted analytic tail that an active
/// tilt estimates (TailMassAbove/Below report the excluded mass).
double WindowedOccupancyTail(double lambda, unsigned min_f, unsigned max_f,
                             unsigned bins) {
  double tail = 0.0;
  double pmf = std::exp(-lambda);  // pi_lambda(0)
  for (unsigned n = 1; n <= max_f; ++n) {
    pmf *= lambda / static_cast<double>(n);
    if (n >= min_f) tail += pmf * ProbMaxOccupancyAtLeast(bins, n, 2);
  }
  return tail;
}

TiltSpec RareTailTilt() {
  TiltSpec tilt;
  tilt.kind = TiltKind::kForced;
  tilt.lambda = 1.6e-5;  // realistic per-trial fault rate -> p ~ 1e-12
  tilt.proposal_lambda = 1.5;
  tilt.min_faults = 2;  // 0/1 faults cannot fail under single-bit-only mix
  tilt.max_faults = 8;
  return tilt;
}

TEST(AnalyticCrosscheck, ImportanceSampledIeccTailAt1e12) {
  ScenarioConfig cfg = CrosscheckConfig();
  cfg.threads = 4;  // results are thread-count invariant
  const TiltSpec tilt = RareTailTilt();
  constexpr unsigned kIsTrials = 3000;

  const WeightedScenarioState state =
      RunWeightedMonteCarlo(cfg, tilt, kIsTrials);
  const TiltSampler sampler(tilt);
  const WeightedEstimate est =
      EstimateWeightedRate(sampler, state.tally, WeightedEvent::kFailure);

  const double analytic = WindowedOccupancyTail(
      tilt.lambda, tilt.min_faults, tilt.max_faults, /*bins=*/128);
  ASSERT_GT(analytic, 1e-13);
  ASSERT_LT(analytic, 1e-11);

  ASSERT_GT(est.estimate, 0.0) << "tilt produced no weighted failures";
  // 4 sigma of the run's own variance estimate plus 1% model slack (two
  // faults cancelling on one bit, as in the unaccelerated cross-check).
  EXPECT_NEAR(est.estimate, analytic, 4.0 * est.std_error + 0.01 * analytic)
      << "IS " << est.estimate << " +- " << est.std_error << " vs analytic "
      << analytic;

  // Acceptance criterion: resolving a ~1e-12 probability to this variance
  // naively would take naive_equiv_trials ~ 1/p trials; the tilt must buy
  // at least two orders of magnitude over the trials actually spent.
  EXPECT_GE(est.acceleration, 100.0)
      << "naive-equivalent " << est.naive_equiv_trials << " for "
      << est.trials << " trials";
  EXPECT_GT(est.naive_equiv_trials, 1e9);

  // The window really carries the tail: everything excluded is the
  // cannot-fail 0/1-fault mass plus a negligible >8-fault remainder. The
  // true >8 mass is ~1e-49, but tail_mass_above is computed as
  // 1 - below - window, so cancellation leaves ~1 ulp of 1.0 (~1e-16).
  EXPECT_NEAR(est.tail_mass_below, std::exp(-tilt.lambda) *
                                       (1.0 + tilt.lambda),
              1e-9);
  EXPECT_LT(est.tail_mass_above, 1e-15);
}

TEST(AnalyticCrosscheck, ImportanceSampledSecDedTailMatchesBeatOccupancy) {
  // Rank SECDED forms one (72,64) codeword per bus beat: 8 bits from each
  // of 8 data devices + 8 check bits in the ECC device. With no on-die
  // spare region every one of the 9 x 2048 row bits belongs to exactly one
  // of row_bits/8 = 256 beats, faults land uniformly, and a trial fails
  // iff some beat absorbs >= 2 faults (SEC-DED corrects singles; doubles
  // are DUEs, triples miscorrect — either way a failure).
  ScenarioConfig cfg = CrosscheckConfig();
  cfg.scheme = ecc::SchemeKind::kSecDed;
  cfg.geometry.device.spare_row_bits = 0;
  cfg.geometry.ecc_devices = 1;
  cfg.seed = 0x5EC0ED;
  cfg.threads = 4;
  const TiltSpec tilt = RareTailTilt();
  constexpr unsigned kIsTrials = 3000;

  const WeightedScenarioState state =
      RunWeightedMonteCarlo(cfg, tilt, kIsTrials);
  const TiltSampler sampler(tilt);
  const WeightedEstimate est =
      EstimateWeightedRate(sampler, state.tally, WeightedEvent::kFailure);

  const unsigned bins = cfg.geometry.device.row_bits / 8;  // 256 beats
  const double analytic = WindowedOccupancyTail(
      tilt.lambda, tilt.min_faults, tilt.max_faults, bins);

  ASSERT_GT(est.estimate, 0.0) << "tilt produced no weighted failures";
  EXPECT_NEAR(est.estimate, analytic, 4.0 * est.std_error + 0.01 * analytic)
      << "IS " << est.estimate << " +- " << est.std_error << " vs analytic "
      << analytic;
  EXPECT_GE(est.acceleration, 100.0);

  // Double-fault beats are detected, not miscorrected, by SEC-DED — the
  // dominant n=2 class must therefore be (almost) all DUE.
  const WeightedEstimate sdc =
      EstimateWeightedRate(sampler, state.tally, WeightedEvent::kSdc);
  const WeightedEstimate due =
      EstimateWeightedRate(sampler, state.tally, WeightedEvent::kDue);
  EXPECT_LT(sdc.estimate, 0.1 * due.estimate);
}

}  // namespace
}  // namespace pair_ecc::reliability
