// Monte-Carlo vs analytic cross-check (reliability/analytic.cpp).
//
// The simulator and the closed-form model are independent implementations
// of the same physics; here each validates the other on a configuration
// where the analytic answer is exact:
//
//   * IECC (SEC Hamming (136,128) per 128-bit word), one working row,
//     single-bit transient faults only. A row of `row_bits` data +
//     `spare_row_bits` parity is exactly words_per_row codewords of 136
//     bits, and the injector draws (device, bit) uniformly — so the faults
//     are balls thrown uniformly into data_devices * words_per_row bins,
//     and a trial fails iff some bin holds >= 2 (SEC corrects any single
//     error). TrialFailureRate must match ProbMaxOccupancyAtLeast within
//     binomial sampling error at the pinned seed.
//   * Given a double-error codeword, the SEC decoder miscorrects (SDC)
//     with probability DoubleErrorMiscorrectionRate() and detects (DUE)
//     otherwise — so the simulator's SDC share of failures must track the
//     exhaustive Hamming rate.
//
// Model error terms (two faults cancelling on one bit, weight-3 parity-only
// codewords) are O(1e-3) here, far below the statistical tolerance.
#include <gtest/gtest.h>

#include <cmath>

#include "hamming/hamming.hpp"
#include "reliability/analytic.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/telemetry.hpp"
#include "util/rng.hpp"

namespace pair_ecc::reliability {
namespace {

constexpr unsigned kTrials = 600;
constexpr unsigned kFaults = 16;

ScenarioConfig CrosscheckConfig() {
  ScenarioConfig cfg;
  cfg.scheme = ecc::SchemeKind::kIecc;
  // Small rows keep the run fast while every column is read back, so no
  // double-error codeword can hide from classification: 2048-bit rows are
  // 16 words of 128 data bits, the 128-bit spare region holds exactly their
  // 16 x 8 parity bits, and 32 lines cover all 32 columns.
  cfg.geometry.device.row_bits = 2048;
  cfg.geometry.device.spare_row_bits = 128;
  cfg.geometry.ecc_devices = 0;  // all faults land in IECC-covered devices
  cfg.mix = faults::FaultMix{1.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                             /*permanent_fraction=*/0.0};
  cfg.faults_per_trial = kFaults;
  cfg.working_rows = 1;
  cfg.lines_per_row = 32;
  cfg.seed = 0xC405C;
  cfg.threads = 1;
  return cfg;
}

TEST(AnalyticCrosscheck, IeccFailureRateMatchesOccupancyModel) {
  const ScenarioConfig cfg = CrosscheckConfig();
  const unsigned words_per_row = cfg.geometry.device.row_bits / 128;
  const unsigned bins = cfg.geometry.data_devices * words_per_row;  // 128

  ScenarioTelemetry tel;
  const OutcomeCounts counts = RunMonteCarlo(cfg, kTrials, &tel);

  // Telemetry sanity: the injected mix is exactly what was configured.
  EXPECT_EQ(tel.trial.injection.total,
            static_cast<std::uint64_t>(kTrials) * kFaults);
  EXPECT_EQ(tel.trial.injection.permanent, 0u);
  EXPECT_EQ(tel.trial.codec.decodes, counts.reads);

  const double expected = ProbMaxOccupancyAtLeast(bins, kFaults, 2);
  const double observed = counts.TrialFailureRate();
  // Binomial sampling noise at the pinned seed; 4 sigma plus the O(1e-3)
  // model error keeps this deterministic test far from its threshold.
  const double sigma = std::sqrt(expected * (1.0 - expected) / kTrials);
  EXPECT_NEAR(observed, expected, 4.0 * sigma + 0.005)
      << "expected " << expected << " +- " << sigma;
}

TEST(AnalyticCrosscheck, SdcShareTracksHammingMiscorrectionRate) {
  const OutcomeCounts counts = RunMonteCarlo(CrosscheckConfig(), kTrials);
  ASSERT_GT(counts.trials_with_failure, 100u)
      << "configuration no longer produces enough failures to resolve the "
         "ratio";

  const double miscorrect =
      hamming::HammingCode::OnDie136().DoubleErrorMiscorrectionRate();
  const double observed =
      static_cast<double>(counts.trials_with_sdc) /
      static_cast<double>(counts.trials_with_failure);
  // Trials with several double-error words push the SDC share slightly
  // above the single-word rate; 0.1 covers that plus sampling noise.
  EXPECT_NEAR(observed, miscorrect, 0.1);
}

TEST(AnalyticCrosscheck, OccupancyModelAgreesWithDirectSimulation) {
  // ProbMaxOccupancyAtLeast is exact (EGF identity); a direct balls-in-bins
  // simulation pins the combinatorics independently of the DRAM stack.
  constexpr unsigned kBins = 128, kBalls = 16, kRounds = 4000;
  util::Xoshiro256 rng(0x0CC0);
  unsigned hits = 0;
  for (unsigned round = 0; round < kRounds; ++round) {
    unsigned occupancy[kBins] = {};
    bool collision = false;
    for (unsigned b = 0; b < kBalls; ++b)
      collision |= ++occupancy[rng.UniformBelow(kBins)] >= 2;
    hits += collision;
  }
  const double expected = ProbMaxOccupancyAtLeast(kBins, kBalls, 2);
  const double observed = static_cast<double>(hits) / kRounds;
  const double sigma = std::sqrt(expected * (1.0 - expected) / kRounds);
  EXPECT_NEAR(observed, expected, 4.0 * sigma);
}

}  // namespace
}  // namespace pair_ecc::reliability
