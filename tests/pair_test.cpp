// PAIR-specific behaviour: pin alignment and containment, burst-error
// correction, delta-parity write-path consistency, erasure repair lists,
// patrol scrubbing, expandability variants, and the scrub-on-write
// ablation mode.
#include <gtest/gtest.h>

#include "core/pair_scheme.hpp"
#include "dram/rank.hpp"
#include "faults/injector.hpp"
#include "util/rng.hpp"

namespace pair_ecc::core {
namespace {

using dram::Address;
using dram::Rank;
using dram::RankGeometry;
using ecc::Claim;
using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

class PairTest : public ::testing::Test {
 protected:
  PairTest() : rank_(rg_), scheme_(rank_, PairConfig::Pair4()) {}

  BitVec WriteRandom(const Address& addr, Xoshiro256& rng) {
    const BitVec line = BitVec::Random(rg_.LineBits(), rng);
    scheme_.WriteLine(addr, line);
    return line;
  }

  RankGeometry rg_;
  Rank rank_{rg_};
  PairScheme scheme_;
};

TEST_F(PairTest, GeometryDerivation) {
  // 1024 pin-line bits = 128 symbols; k = 64 -> 2 codewords per pin.
  EXPECT_EQ(scheme_.CodewordsPerPin(), 2u);
  EXPECT_EQ(scheme_.code().n(), 68u);
  EXPECT_EQ(scheme_.code().t(), 2u);
}

TEST_F(PairTest, ParityBudgetExactlyFillsSpareRegion) {
  // 8 pins x 2 codewords x 4 check symbols x 8 bits == 512 == spare bits:
  // PAIR consumes precisely the vendor redundancy budget.
  const unsigned parity_bits =
      rg_.device.dq_pins * scheme_.CodewordsPerPin() * 4 * 8;
  EXPECT_EQ(parity_bits, rg_.device.spare_row_bits);
}

TEST_F(PairTest, TwoArbitraryFlipsInOneDeviceAlwaysCorrected) {
  // t=2 per codeword and codewords tile disjoint bits, so ANY two flips in
  // a device's row are corrected — even in the same codeword.
  Xoshiro256 rng(100);
  for (int trial = 0; trial < 60; ++trial) {
    const Address addr{0, 1, static_cast<unsigned>(rng.UniformBelow(128))};
    const BitVec line = WriteRandom(addr, rng);
    unsigned a = static_cast<unsigned>(rng.UniformBelow(8192));
    unsigned b;
    do { b = static_cast<unsigned>(rng.UniformBelow(8192)); } while (b == a);
    rank_.device(3).InjectFlip(0, 1, a);
    rank_.device(3).InjectFlip(0, 1, b);
    const auto r = scheme_.ReadLine(addr);
    EXPECT_NE(r.claim, Claim::kDetected) << trial;
    EXPECT_EQ(r.data, line) << trial;
    scheme_.WriteLine(addr, line);
    rank_.ClearStuck();
    // Clear residual flips outside the addressed column by rewriting all
    // lines is overkill; instead undo the flips if still present.
    scheme_.ScrubRow(0, 1);
  }
}

TEST_F(PairTest, BurstUpToNineBitsAlongPinIsCorrected) {
  // A burst of length L along one pin spans ceil((L + 7) / 8) <= 2 symbols
  // of ONE codeword whenever L <= 9; t = 2 covers it.
  Xoshiro256 rng(101);
  faults::Injector injector(rank_, {{0, 2}});
  for (unsigned len = 1; len <= 9; ++len) {
    for (int trial = 0; trial < 10; ++trial) {
      const Address addr{0, 2, static_cast<unsigned>(rng.UniformBelow(128))};
      const BitVec line = WriteRandom(addr, rng);
      injector.InjectPinBurst(/*device=*/1, len, rng);
      const auto r = scheme_.ReadLine(addr);
      EXPECT_NE(r.claim, Claim::kDetected) << "len " << len;
      EXPECT_EQ(r.data, line) << "len " << len;
      scheme_.ScrubRow(0, 2);
    }
  }
}

TEST_F(PairTest, LongBurstIsDetectedNeverSilent) {
  // 32-beat bursts span 4-5 symbols > t: bounded-distance decoding must
  // detect (or, vanishingly rarely, miscorrect — but never claim clean with
  // wrong data in this deterministic sweep).
  Xoshiro256 rng(102);
  faults::Injector injector(rank_, {{0, 3}});
  int detected = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Address addr{0, 3, 5};
    const BitVec line = WriteRandom(addr, rng);
    const auto f = injector.InjectPinBurst(/*device=*/0, /*length=*/32, rng);
    (void)f;
    const auto r = scheme_.ReadLine(addr);
    if (r.claim == Claim::kDetected) {
      ++detected;
    } else {
      EXPECT_EQ(r.data, line) << trial;  // burst may miss the read column
    }
    scheme_.ScrubRow(0, 3);
    scheme_.WriteLine(addr, line);
  }
  EXPECT_GT(detected, 0);
}

TEST_F(PairTest, PinFaultIsContainedAndDetected) {
  Xoshiro256 rng(103);
  faults::Injector injector(rank_, {{0, 4}});
  int sdc = 0, detected = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Address addr{0, 4, 60};
    const BitVec line = WriteRandom(addr, rng);
    injector.Inject(faults::FaultType::kSinglePin, true, rng);
    const auto r = scheme_.ReadLine(addr);
    if (r.claim == Claim::kDetected) {
      ++detected;
      // Containment: only the faulty device's faulty pin may be wrong.
      const BitVec diff = r.data ^ line;
      for (auto bit : diff.SetBits()) {
        const unsigned dev_local = static_cast<unsigned>(bit) % 64;
        EXPECT_EQ(dev_local % 8, diff.SetBits().front() % 64 % 8)
            << "damage crossed pins";
      }
    } else if (r.data != line) {
      ++sdc;
    }
    rank_.ClearStuck();
    scheme_.WriteLine(addr, line);
    scheme_.ScrubRow(0, 4);
  }
  EXPECT_EQ(sdc, 0);
  EXPECT_GT(detected, 20);  // a stuck pin is essentially always caught
}

TEST_F(PairTest, PinFaultLeavesOtherPinsDecodable) {
  // Even with a whole pin dead, the other 63 pin codewords of the row must
  // decode clean — the fault is contained to one codeword per segment.
  Xoshiro256 rng(104);
  const Address addr{0, 5, 7};
  const BitVec line = WriteRandom(addr, rng);
  // Kill pin 2 of device 6 by hand (stuck-at inverted = always wrong).
  const auto& g = rg_.device;
  for (unsigned i = 0; i < g.PinLineBits(); ++i) {
    const unsigned bit = dram::PinLineBit(g, 2, i);
    rank_.device(6).SetStuck(0, 5, bit, !rank_.device(6).ReadBit(0, 5, bit));
  }
  const auto r = scheme_.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kDetected);
  // All delivered bits except device 6 pin 2 must be correct.
  const BitVec diff = r.data ^ line;
  for (auto bit : diff.SetBits()) {
    EXPECT_EQ(bit / 64, 6u);       // device 6
    EXPECT_EQ((bit % 64) % 8, 2u); // pin 2
  }
  EXPECT_GT(diff.Popcount(), 0u);
}

TEST_F(PairTest, DeltaParityWritePathMatchesFullReencode) {
  // Write many lines through the delta path, then verify every codeword of
  // the row is a valid RS codeword (parity kept perfectly in sync).
  Xoshiro256 rng(105);
  for (int i = 0; i < 300; ++i) {
    const Address addr{0, 6, static_cast<unsigned>(rng.UniformBelow(128))};
    WriteRandom(addr, rng);
  }
  const auto stats = scheme_.ScrubRow(0, 6);
  EXPECT_EQ(stats.codewords, 8u * 8u * 2u);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.uncorrectable, 0u);
}

TEST_F(PairTest, ErasureListRaisesCorrectionPower) {
  // 4 known-bad symbols in one codeword exceed t = 2, but with the repair
  // list they decode as erasures (f = 4 <= r = 4).
  Xoshiro256 rng(106);
  const Address addr{0, 7, 0};
  const BitVec line = WriteRandom(addr, rng);
  // Also fill the rest of the codeword's columns so symbols are defined.
  std::vector<BitVec> lines;
  for (unsigned col = 1; col < 64; ++col) {
    lines.push_back(BitVec::Random(rg_.LineBits(), rng));
    scheme_.WriteLine({0, 7, col}, lines.back());
  }
  // Corrupt symbols 0, 10, 20, 30 of (device 0, pin 0, codeword 0): these
  // are pin-line bits of columns 0, 10, 20, 30.
  for (unsigned s : {0u, 10u, 20u, 30u}) {
    rank_.device(0).InjectFlip(0, 7, dram::PinLineBit(rg_.device, 0, s * 8 + 3));
    rank_.device(0).InjectFlip(0, 7, dram::PinLineBit(rg_.device, 0, s * 8 + 5));
  }
  // Without the repair list: 4 symbol errors -> detected.
  EXPECT_EQ(scheme_.ReadLine(addr).claim, Claim::kDetected);
  for (unsigned s : {0u, 10u, 20u, 30u})
    scheme_.MarkSymbolErased(/*device=*/0, /*pin=*/0, /*w=*/0, /*position=*/s);
  const auto r = scheme_.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

TEST_F(PairTest, MarkSymbolErasedValidatesArguments) {
  EXPECT_THROW(scheme_.MarkSymbolErased(8, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(scheme_.MarkSymbolErased(0, 8, 0, 0), std::invalid_argument);
  EXPECT_THROW(scheme_.MarkSymbolErased(0, 0, 2, 0), std::invalid_argument);
  EXPECT_THROW(scheme_.MarkSymbolErased(0, 0, 0, 68), std::invalid_argument);
  // Duplicate registration is idempotent, not an error.
  scheme_.MarkSymbolErased(0, 0, 0, 5);
  scheme_.MarkSymbolErased(0, 0, 0, 5);
  scheme_.ClearErasures();
}

TEST_F(PairTest, ScrubRowClearsAccumulatedTransients) {
  Xoshiro256 rng(107);
  const Address addr{0, 8, 33};
  const BitVec line = WriteRandom(addr, rng);
  rank_.device(2).InjectFlip(0, 8, 33 * 64 + 9);
  const auto stats = scheme_.ScrubRow(0, 8);
  EXPECT_EQ(stats.corrected, 1u);
  // After scrubbing, the read is clean (not merely corrected).
  const auto r = scheme_.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kClean);
  EXPECT_EQ(r.data, line);
}

TEST(PairVariants, Pair2GeometryAndSingleSymbolCorrection) {
  RankGeometry rg;
  Rank rank(rg);
  PairScheme scheme(rank, PairConfig::Pair2());
  EXPECT_EQ(scheme.code().n(), 34u);
  EXPECT_EQ(scheme.code().t(), 1u);
  EXPECT_EQ(scheme.CodewordsPerPin(), 4u);
  Xoshiro256 rng(108);
  const Address addr{0, 0, 17};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme.WriteLine(addr, line);
  rank.device(5).InjectFlip(0, 0, 17 * 64 + 20);
  const auto r = scheme.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

TEST(PairVariants, Pair2MostlyDetectsDoubleSymbolErrors) {
  // A t=1 RS code presented with two symbol errors usually detects, but a
  // minority of weight-2 patterns sit within distance 1 of another codeword
  // and miscorrect (d = 3). PAIR-2 inherits that — it is why the paper's
  // default is the t=2 variant. Verify the codec exhibits both behaviours
  // with detection dominating.
  RankGeometry rg;
  Xoshiro256 rng(109);
  int sdc = 0, detected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Rank rank(rg);  // fresh state per trial
    PairScheme scheme(rank, PairConfig::Pair2());
    const Address addr{0, 0, 2};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme.WriteLine(addr, line);
    // Two symbols of the same codeword (pin 0 of device 0): columns 2, 3,
    // with random in-symbol damage.
    rank.device(0).InjectFlip(0, 0, 2 * 64 + 8 * rng.UniformBelow(8));
    rank.device(0).InjectFlip(0, 0, 3 * 64 + 8 * rng.UniformBelow(8));
    const auto r = scheme.ReadLine(addr);
    if (r.claim == Claim::kDetected) {
      ++detected;
    } else if (r.data != line) {
      ++sdc;
    }
  }
  EXPECT_GT(detected, 40);   // detection dominates
  EXPECT_LT(sdc, 20);        // miscorrection is the (real) minority path
}

TEST(PairAblation, ScrubOnWriteModeStaysConsistent) {
  RankGeometry rg;
  Rank rank(rg);
  PairConfig cfg = PairConfig::Pair4();
  cfg.scrub_on_write = true;
  PairScheme scheme(rank, cfg);
  EXPECT_TRUE(scheme.Perf().write_rmw);
  Xoshiro256 rng(110);
  for (int i = 0; i < 100; ++i) {
    const Address addr{0, 0, static_cast<unsigned>(rng.UniformBelow(128))};
    scheme.WriteLine(addr, BitVec::Random(rg.LineBits(), rng));
  }
  const auto stats = scheme.ScrubRow(0, 0);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.uncorrectable, 0u);
}

TEST(PairAblation, ScrubOnWriteRepairsLatentErrorBeforeOverwrite) {
  // The RMW mode's one advantage: a latent error in the codeword is
  // corrected during the write instead of lingering. Verify the repair.
  RankGeometry rg;
  Rank rank(rg);
  PairConfig cfg = PairConfig::Pair4();
  cfg.scrub_on_write = true;
  PairScheme scheme(rank, cfg);
  Xoshiro256 rng(111);
  const Address victim{0, 0, 10};   // same codeword as column 11 (w = 0)
  const Address writer{0, 0, 11};
  const BitVec lv = BitVec::Random(rg.LineBits(), rng);
  scheme.WriteLine(victim, lv);
  rank.device(1).InjectFlip(0, 0, 10 * 64 + 5);  // latent error at col 10
  scheme.WriteLine(writer, BitVec::Random(rg.LineBits(), rng));
  // The write to column 11 scrubbed the shared codeword: col 10 reads clean.
  const auto r = scheme.ReadLine(victim);
  EXPECT_EQ(r.claim, Claim::kClean);
  EXPECT_EQ(r.data, lv);
}

TEST(PairConfigTest, ValidationAndNames) {
  PairConfig c;
  c.data_symbols = 0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = PairConfig::Pair4();
  c.data_symbols = 254;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  EXPECT_EQ(PairConfig::Pair4().Name(), "PAIR-4");
  EXPECT_EQ(PairConfig::Pair2().Name(), "PAIR-2");
  PairConfig rmw = PairConfig::Pair4();
  rmw.scrub_on_write = true;
  EXPECT_EQ(rmw.Name(), "PAIR-4(rmw)");
}

TEST(PairGeometry, RejectsIncompatibleGeometries) {
  RankGeometry rg;
  rg.device.burst_length = 4;  // not a whole symbol per column per pin
  rg.device.row_bits = 8192;
  Rank rank(rg);
  EXPECT_THROW(PairScheme(rank, PairConfig::Pair4()), std::invalid_argument);

  RankGeometry rg2;
  rg2.device.spare_row_bits = 100;  // too small for parity
  Rank rank2(rg2);
  EXPECT_THROW(PairScheme(rank2, PairConfig::Pair4()), std::invalid_argument);
}

class PairWidthTest : public ::testing::TestWithParam<unsigned> {
 protected:
  static RankGeometry Geometry(unsigned pins) {
    RankGeometry rg;
    rg.device.dq_pins = pins;
    rg.data_devices = 64 / pins;  // constant 64-bit bus
    return rg;
  }
};

TEST_P(PairWidthTest, TilesPinLinesAtTheSameBudget) {
  const RankGeometry rg = Geometry(GetParam());
  Rank rank(rg);
  PairScheme scheme(rank, PairConfig::Pair4());
  // cw/pin * pins is constant: 512 parity bits per row at every width.
  EXPECT_EQ(scheme.CodewordsPerPin() * GetParam() * 4 * 8, 512u);
}

TEST_P(PairWidthTest, RoundTripAndSingleSymbolCorrection) {
  const RankGeometry rg = Geometry(GetParam());
  Rank rank(rg);
  PairScheme scheme(rank, PairConfig::Pair4());
  Xoshiro256 rng(300 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Address addr{
        0, 2, static_cast<unsigned>(rng.UniformBelow(rg.device.ColumnsPerRow()))};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme.WriteLine(addr, line);
    const unsigned d = static_cast<unsigned>(rng.UniformBelow(rank.DataDevices()));
    const unsigned bit = addr.col * rg.device.AccessBits() +
                         static_cast<unsigned>(
                             rng.UniformBelow(rg.device.AccessBits()));
    rank.device(d).InjectFlip(addr.bank, addr.row, bit);
    const auto r = scheme.ReadLine(addr);
    EXPECT_EQ(r.claim, Claim::kCorrected) << "x" << GetParam();
    EXPECT_EQ(r.data, line);
    rank.device(d).InjectFlip(addr.bank, addr.row, bit);
  }
}

TEST_P(PairWidthTest, AlignedBurstCorrectedAtEveryWidth) {
  const RankGeometry rg = Geometry(GetParam());
  Rank rank(rg);
  PairScheme scheme(rank, PairConfig::Pair4());
  Xoshiro256 rng(400 + GetParam());
  const Address addr{0, 3, 5};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme.WriteLine(addr, line);
  // 8-beat burst on one pin of one device, aligned to the read column.
  for (unsigned i = 0; i < 8; ++i)
    rank.device(0).InjectFlip(0, 3, dram::PinLineBit(rg.device, 1, 5 * 8 + i));
  const auto r = scheme.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

INSTANTIATE_TEST_SUITE_P(Widths, PairWidthTest,
                         ::testing::Values(4u, 8u, 16u));

TEST(PairExpandability, WiderKLowersOverheadAndStillWorks) {
  // k = 128: one codeword per pin, overhead 4/128 = 3.1% — half the budget.
  RankGeometry rg;
  Rank rank(rg);
  PairConfig cfg;
  cfg.data_symbols = 128;
  cfg.check_symbols = 4;
  PairScheme scheme(rank, cfg);
  EXPECT_EQ(scheme.CodewordsPerPin(), 1u);
  Xoshiro256 rng(112);
  const Address addr{0, 0, 99};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme.WriteLine(addr, line);
  rank.device(0).InjectFlip(0, 0, 99 * 64 + 1);
  rank.device(0).InjectFlip(0, 0, 50 * 64 + 1);  // same pin, same codeword now
  const auto r = scheme.ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

}  // namespace
}  // namespace pair_ecc::core
