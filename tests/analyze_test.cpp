// Tests for the pair_analyze static-analysis framework: the scanner
// (blanking, includes, function recognition, suppressions), every rule
// family against fixture sources with known violations (positive +
// suppressed + clean), the hygiene rules, the baseline ratchet, and a pin
// of the findings-report JSON schema.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyze.hpp"
#include "telemetry/diff.hpp"

namespace pair_ecc::analyze {
namespace {

/// A config whose scoping matches the fixtures below instead of the real
/// tree, so rules are tested in isolation from repo layout churn.
AnalyzerConfig FixtureConfig() {
  AnalyzerConfig config;
  config.layer_deps = {
      {"telemetry", {"util"}},
      {"util", {"telemetry"}},  // fixture-only: lets util include report.hpp
      {"gf", {"util"}},
      {"rs", {"gf", "util"}},
  };
  config.report_path_prefixes = {"src/telemetry/"};
  config.report_writer_headers = {"telemetry/report.hpp"};
  config.hot_file_prefixes = {"src/rs/"};
  config.hot_function_names = {"Decode"};
  config.hot_banned_calls = {"Syndromes"};
  config.contract_prefixes = {"src/"};
  config.atomic_write_prefixes = {"src/", "tools/"};
  config.atomic_write_exempt = {"src/util/atomic_file.hpp"};
  return config;
}

AnalysisResult RunOn(const std::string& path, const std::string& text) {
  const Analyzer analyzer = Analyzer::WithDefaultRules(FixtureConfig());
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(path, text));
  return analyzer.Run(files);
}

std::vector<std::string> RuleIds(const AnalysisResult& result) {
  std::vector<std::string> ids;
  for (const auto& f : result.findings) ids.push_back(f.rule);
  return ids;
}

// ----------------------------------------------------------------- scanner

TEST(AnalyzeScanner, BlanksCommentsAndStringsButKeepsOffsets) {
  const auto f = SourceFile::FromString(
      "src/util/x.cpp",
      "int a; // rand()\nconst char* s = \"rand()\";\nint rand();\n");
  EXPECT_EQ(f.code().size(), f.text().size());
  // The only surviving 'rand' token is the real declaration on line 3.
  EXPECT_EQ(f.code().find("rand"), f.text().find("int rand();") + 4);
}

TEST(AnalyzeScanner, HandlesRawStringsAndCharLiterals) {
  const auto f = SourceFile::FromString(
      "src/util/x.cpp",
      "auto r = R\"(srand(1))\";\nchar c = ')';\nint y = 1;\n");
  EXPECT_EQ(f.code().find("srand"), std::string::npos);
  EXPECT_NE(f.code().find("int y"), std::string::npos);
}

TEST(AnalyzeScanner, ParsesIncludesWithLines) {
  const auto f = SourceFile::FromString(
      "src/rs/x.cpp",
      "#include \"gf/gf2m.hpp\"\n#include <vector>\n  #include \"rs/poly.hpp\"\n");
  ASSERT_EQ(f.includes().size(), 3u);
  EXPECT_EQ(f.includes()[0].path, "gf/gf2m.hpp");
  EXPECT_FALSE(f.includes()[0].angled);
  EXPECT_EQ(f.includes()[1].path, "vector");
  EXPECT_TRUE(f.includes()[1].angled);
  EXPECT_EQ(f.includes()[2].line, 3u);
}

TEST(AnalyzeScanner, RecognisesFunctionsSkippingControlFlowAndLambdas) {
  const auto f = SourceFile::FromString("src/util/x.cpp", R"(
int Foo(int a) {
  if (a > 0) { return a; }
  auto fn = [&](int b) { return b; };
  for (int i = 0; i < a; ++i) { fn(i); }
  return 0;
}
struct S {
  S(int v) : v_(v), w_(v) { }
  int Bar() const noexcept { return v_; }
  int v_, w_;
};
)");
  std::vector<std::string> names;
  for (const auto& fn : f.functions()) names.push_back(fn.name);
  EXPECT_EQ(names, (std::vector<std::string>{"Foo", "S", "Bar"}));
}

TEST(AnalyzeScanner, QualifiedNamesAndParams) {
  const auto f = SourceFile::FromString(
      "src/rs/x.cpp",
      "void RsCode::Decode(std::span<Elem> word, DecodeScratch& sc) {\n"
      "  sc.syn.resize(3);\n}\n");
  ASSERT_EQ(f.functions().size(), 1u);
  EXPECT_EQ(f.functions()[0].name, "Decode");
  EXPECT_EQ(f.functions()[0].qualified, "RsCode::Decode");
  EXPECT_NE(f.functions()[0].params.find("DecodeScratch"), std::string::npos);
}

TEST(AnalyzeScanner, ModuleClassification) {
  EXPECT_EQ(SourceFile::FromString("src/rs/a.cpp", "").Module(), "rs");
  EXPECT_EQ(SourceFile::FromString("tools/a.cpp", "").Module(), "");
  EXPECT_EQ(SourceFile::FromString("tools/a.cpp", "").TopDir(), "tools");
}

// --------------------------------------------------------------------- DET

TEST(AnalyzeDet, FiresOnRandomDevice) {
  const auto result = RunOn("src/util/x.cpp",
                            "#include <random>\n"
                            "int Draw() { std::random_device rd; return rd(); }\n");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "DET-RAND");
  EXPECT_EQ(result.findings[0].line, 2u);
}

TEST(AnalyzeDet, SuppressionDischargesAndIsMarkedUsed) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "// PAIR_ANALYZE_ALLOW(DET-RAND: entropy for the CLI banner only)\n"
      "int Draw() { return rand(); }\n");
  EXPECT_TRUE(result.findings.empty());
  ASSERT_EQ(result.suppressed.size(), 1u);
  EXPECT_EQ(result.suppressed[0].rule, "DET-RAND");
}

TEST(AnalyzeDet, CleanFileHasNoFindings) {
  const auto result = RunOn("src/util/x.cpp",
                            "#include \"util/rng.hpp\"\n"
                            "int Draw(pair_ecc::util::Xoshiro256& rng);\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeDet, WallClockFires) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "#include <chrono>\n"
      "auto Now() { return std::chrono::system_clock::now(); }\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"DET-TIME"}));
}

TEST(AnalyzeDet, UnorderedOnlyFlaggedOnReportPath) {
  const std::string body = "std::unordered_map<int, int> m;\n";
  // Not a report path: src/util is neither a listed prefix nor includes a
  // writer header.
  EXPECT_TRUE(RunOn("src/util/x.cpp", body).findings.empty());
  // Same text under src/telemetry/ is a finding.
  const auto result = RunOn("src/telemetry/x.cpp", body);
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"DET-UNORD"}));
  // ... as is any file that includes a report-writer header.
  const auto via_header = RunOn(
      "src/util/x.cpp", "#include \"telemetry/report.hpp\"\n" + body);
  EXPECT_EQ(RuleIds(via_header), (std::vector<std::string>{"DET-UNORD"}));
}

// --------------------------------------------------------------------- HOT

TEST(AnalyzeHot, AllocationInHotFunctionFires) {
  const auto result = RunOn(
      "src/rs/x.cpp",
      "int Decode(std::span<int> w) {\n"
      "  PAIR_CHECK(!w.empty(), \"empty\");\n"
      "  int* p = new int[3];\n  delete[] p;\n  return 0;\n}\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"HOT-ALLOC"}));
}

TEST(AnalyzeHot, LocalContainerInHotFunctionFires) {
  const auto result = RunOn(
      "src/rs/x.cpp",
      "int Decode(std::span<int> w) {\n"
      "  PAIR_CHECK(!w.empty(), \"empty\");\n"
      "  std::vector<int> tmp(w.size());\n  return (int)tmp.size();\n}\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"HOT-LOCAL"}));
}

TEST(AnalyzeHot, ReferencesAndCallsDoNotFire) {
  const auto result = RunOn(
      "src/rs/x.cpp",
      "int Decode(std::span<int> w, std::vector<int>& out) {\n"
      "  PAIR_CHECK(!w.empty(), \"empty\");\n"
      "  const std::vector<int>& view = out;\n"
      "  return (int)view.size();\n}\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeHot, ColdApiCallFromHotBodyFires) {
  const auto result = RunOn(
      "src/rs/x.cpp",
      "int Decode(std::span<int> w) {\n"
      "  PAIR_CHECK(!w.empty(), \"empty\");\n"
      "  return Syndromes(w);\n}\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"HOT-COLDAPI"}));
}

TEST(AnalyzeHot, ScratchParamMarksFunctionHotAnywhere) {
  // File outside hot prefixes, name not in the hot list — the
  // DecodeScratch parameter alone makes it hot.
  const auto result = RunOn(
      "src/util/x.cpp",
      "int Chew(std::span<int> w, DecodeScratch& sc) {\n"
      "  PAIR_CHECK(!w.empty(), \"empty\");\n"
      "  std::vector<int> tmp;\n  return 0;\n}\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"HOT-LOCAL"}));
}

TEST(AnalyzeHot, SuppressedAllocIsDischarged) {
  const auto result = RunOn(
      "src/rs/x.cpp",
      "int Decode(std::span<int> w) {\n"
      "  PAIR_CHECK(!w.empty(), \"empty\");\n"
      "  // PAIR_ANALYZE_ALLOW(HOT-LOCAL: cold fallback, measured harmless)\n"
      "  std::vector<int> tmp(w.size());\n  return 0;\n}\n");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed.size(), 1u);
}

// --------------------------------------------------------------------- LAY

TEST(AnalyzeLay, UpwardIncludeFires) {
  const auto result = RunOn("src/gf/x.cpp", "#include \"rs/rs_code.hpp\"\n");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "LAY-UPWARD");
  EXPECT_EQ(result.findings[0].line, 1u);
}

TEST(AnalyzeLay, TransitiveClosureAllowsIndirectDeps) {
  // rs -> gf directly and rs -> util via gf's deps: both fine.
  const auto result = RunOn(
      "src/rs/x.cpp",
      "#include \"gf/gf2m.hpp\"\n#include \"util/contract.hpp\"\n"
      "#include \"rs/poly.hpp\"\n#include <vector>\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeLay, UnknownModuleFires) {
  const auto result = RunOn("src/newthing/x.cpp", "int x;\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"LAY-UNKNOWN"}));
}

TEST(AnalyzeLay, AppDirsAreExempt) {
  const auto result =
      RunOn("tools/x.cpp", "#include \"rs/rs_code.hpp\"\n"
                           "#include \"sim/simulator.hpp\"\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeLay, SuppressionDischarges) {
  const auto result = RunOn(
      "src/gf/x.cpp",
      "// PAIR_ANALYZE_ALLOW(LAY-UPWARD: transitional, tracked in ROADMAP)\n"
      "#include \"rs/rs_code.hpp\"\n");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed.size(), 1u);
}

// --------------------------------------------------------------------- CON

TEST(AnalyzeCon, SpanFunctionWithoutCheckFires) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "int Sum(std::span<const int> xs) {\n"
      "  int s = 0;\n  for (int x : xs) s += x;\n  return s;\n}\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"CON-SPAN"}));
}

TEST(AnalyzeCon, AnyContractMacroSatisfies) {
  for (const char* macro : {"PAIR_CHECK", "PAIR_DCHECK", "PAIR_CHECK_RANGE"}) {
    const auto result = RunOn(
        "src/util/x.cpp",
        std::string("int Sum(std::span<const int> xs) {\n  ") + macro +
            "(!xs.empty(), \"empty\");\n  return 0;\n}\n");
    EXPECT_TRUE(result.findings.empty()) << macro;
  }
}

TEST(AnalyzeCon, OnlyContractPrefixesAreChecked) {
  const auto result = RunOn(
      "tools/x.cpp",
      "int Sum(std::span<const int> xs) { return (int)xs.size(); }\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeCon, SuppressionDischarges) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "// PAIR_ANALYZE_ALLOW(CON-SPAN: delegates to SumInto, which checks)\n"
      "int Sum(std::span<const int> xs) { return SumInto(xs); }\n");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed.size(), 1u);
}

TEST(AnalyzeCon, OfstreamOnJsonPathFires) {
  const auto result = RunOn(
      "tools/report_writer.cpp",
      "void WriteReport(const std::string& json_path) {\n"
      "  std::ofstream out(json_path, std::ios::binary);\n"
      "  out << \"{}\";\n}\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"CON-ATOMIC"}));
}

TEST(AnalyzeCon, OfstreamWithoutJsonContextDoesNotFire) {
  // A plain-text trace writer is allowed to stream directly.
  const auto result = RunOn(
      "src/util/trace_io.cpp",
      "void WriteTraceFile(const std::string& path) {\n"
      "  std::ofstream os(path);\n  os << \"# trace\\n\";\n}\n");
  EXPECT_EQ(RuleIds(result), std::vector<std::string>{});
}

TEST(AnalyzeCon, AtomicWriterItselfIsExempt) {
  const auto result = RunOn(
      "src/util/atomic_file.hpp",
      "void AtomicWriteFile(const std::string& json_path) {\n"
      "  std::ofstream out(json_path);\n}\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeCon, AtomicRuleScopedToConfiguredPrefixes) {
  const auto result = RunOn(
      "examples/demo.cpp",
      "void Demo() { std::ofstream out(json_path); }\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeCon, AtomicSuppressionDischarges) {
  const auto result = RunOn(
      "tools/report_writer.cpp",
      "void WriteReport(const std::string& json_path) {\n"
      "  // PAIR_ANALYZE_ALLOW(CON-ATOMIC: streams to a pipe, not a file)\n"
      "  std::ofstream out(json_path);\n}\n");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed.size(), 1u);
}

// --------------------------------------------------------------------- THR

TEST(AnalyzeThr, MutableFunctionLocalStaticFires) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "int Next() {\n  static int counter = 0;\n  return ++counter;\n}\n");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "THR-STATIC");
  EXPECT_NE(result.findings[0].message.find("function-local"),
            std::string::npos);
}

TEST(AnalyzeThr, NamespaceScopeStaticFires) {
  const auto result =
      RunOn("src/util/x.cpp", "static int g_count = 0;\nint Get();\n");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "THR-STATIC");
}

TEST(AnalyzeThr, ConstConstexprAndFunctionsDoNotFire) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "static constexpr int kMax = 8;\n"
      "static const char* Name() { return \"x\"; }\n"
      "struct S { static int Helper(int v); };\n"
      "int F() { static const int kTable = 3; return kTable; }\n"
      "void G() { static_assert(sizeof(int) == 4); int x = static_cast<int>(1.0); (void)x; }\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeThr, SuppressionDischarges) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "int Get() {\n"
      "  // PAIR_ANALYZE_ALLOW(THR-STATIC: write-once cache behind a mutex)\n"
      "  static std::map<int, int> cache;\n  return (int)cache.size();\n}\n");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed.size(), 1u);
}

// --------------------------------------------------------------------- ANA

TEST(AnalyzeAna, MalformedSuppressionFires) {
  // Rule-shaped but missing the ": reason" tail.
  const auto result = RunOn("src/util/x.cpp",
                            "// PAIR_ANALYZE_ALLOW(DET-RAND)\nint x;\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"ANA-BAD-ALLOW"}));
}

TEST(AnalyzeAna, EmptyReasonFires) {
  const auto result = RunOn("src/util/x.cpp",
                            "// PAIR_ANALYZE_ALLOW(DET-RAND: )\nint x;\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"ANA-BAD-ALLOW"}));
}

TEST(AnalyzeAna, UnusedSuppressionFires) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "// PAIR_ANALYZE_ALLOW(DET-RAND: no rand call below anymore)\nint x;\n");
  EXPECT_EQ(RuleIds(result), (std::vector<std::string>{"ANA-UNUSED-ALLOW"}));
}

TEST(AnalyzeAna, LowercasePlaceholderIsProse) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "// docs may say PAIR_ANALYZE_ALLOW(<rule-id>: <reason>) freely\nint x;\n");
  EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------- baseline

TEST(AnalyzeBaseline, RatchetPassesAtBaselineAndFailsAboveIt) {
  const std::string two_statics =
      "int A() { static int a = 0; return ++a; }\n"
      "int B() { static int b = 0; return ++b; }\n";
  const auto result = RunOn("src/util/x.cpp", two_statics);
  ASSERT_EQ(result.findings.size(), 2u);

  // A baseline carrying both findings: nothing new.
  const auto baseline = BaselineFromReport(ResultToReport(result));
  EXPECT_TRUE(NewFindings(result.findings, baseline).empty());

  // A third static exceeds the (rule, file) allowance by exactly one.
  const auto grown = RunOn("src/util/x.cpp",
                           two_statics +
                               "int C() { static int c = 0; return ++c; }\n");
  const auto fresh = NewFindings(grown.findings, baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "THR-STATIC");

  // Line-number churn alone does not break the ratchet.
  const auto moved = RunOn("src/util/x.cpp", "// pushed down\n" + two_statics);
  EXPECT_TRUE(NewFindings(moved.findings, baseline).empty());
}

TEST(AnalyzeBaseline, UnknownFileIsAlwaysNew) {
  const auto result =
      RunOn("src/util/y.cpp", "int A() { static int a = 0; return ++a; }\n");
  EXPECT_EQ(NewFindings(result.findings, {}).size(), 1u);
}

// ------------------------------------------------------------- JSON schema

TEST(AnalyzeReport, SchemaIsPinned) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "int Next() {\n  static int counter = 0;\n  return ++counter;\n}\n");
  const telemetry::JsonValue report = ResultToReport(result);

  // Valid pair-report, so bench_diff and every downstream consumer can
  // read analyzer output unchanged.
  EXPECT_TRUE(telemetry::ValidateReportSchema(report).empty());
  EXPECT_EQ(report.Find("schema")->AsString(), "pair-report");
  EXPECT_EQ(report.Find("tool")->AsString(), "pair_analyze");

  // Pinned layout of the findings table: these names are what the
  // committed baseline and CI artifact parsing depend on.
  const auto* findings = report.Find("tables")->Find("findings");
  ASSERT_NE(findings, nullptr);
  const auto& columns = findings->Find("columns")->AsArray();
  ASSERT_EQ(columns.size(), 4u);
  EXPECT_EQ(columns[0].AsString(), "rule");
  EXPECT_EQ(columns[1].AsString(), "file");
  EXPECT_EQ(columns[2].AsString(), "line");
  EXPECT_EQ(columns[3].AsString(), "message");
  ASSERT_EQ(findings->Find("rows")->AsArray().size(), 1u);
  const auto& row = findings->Find("rows")->AsArray()[0].AsArray();
  EXPECT_EQ(row[0].AsString(), "THR-STATIC");
  EXPECT_EQ(row[1].AsString(), "src/util/x.cpp");
  EXPECT_EQ(row[2].AsString(), "2");

  // Counters carry the per-family rollup.
  EXPECT_EQ(report.Find("counters")->Find("findings_total")->AsInt(), 1);
  EXPECT_EQ(report.Find("counters")->Find("findings_THR")->AsInt(), 1);

  // Byte-identical across runs (the determinism contract).
  EXPECT_EQ(report.Dump(), ResultToReport(result).Dump());
}

TEST(AnalyzeReport, SuppressedTableIsCarried) {
  const auto result = RunOn(
      "src/util/x.cpp",
      "// PAIR_ANALYZE_ALLOW(DET-RAND: fixture)\nint D() { return rand(); }\n");
  const auto report = ResultToReport(result);
  EXPECT_EQ(report.Find("counters")->Find("suppressed_total")->AsInt(), 1);
  EXPECT_EQ(report.Find("tables")
                ->Find("suppressed")
                ->Find("rows")
                ->AsArray()
                .size(),
            1u);
}

// The default config's DAG must stay acyclic and self-consistent: every
// named dependency is itself a known module.
TEST(AnalyzeConfig, DefaultLayeringDagIsClosed) {
  const AnalyzerConfig config = AnalyzerConfig::Default();
  for (const auto& [module, deps] : config.layer_deps)
    for (const auto& dep : deps)
      EXPECT_TRUE(config.layer_deps.count(dep) != 0)
          << module << " depends on unknown module " << dep;
}

}  // namespace
}  // namespace pair_ecc::analyze
