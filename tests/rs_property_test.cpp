// Property-based Reed-Solomon round-trip hardening.
//
// For every (n, k) configuration the simulator instantiates — PAIR-2
// (34, 32), PAIR-4 (68, 64), DUO (76, 64), their expanded siblings, and a
// deep (255, 223) code — seeded-random codewords are hit with random error
// patterns and the decode contract is checked exhaustively:
//
//   e <= t        decode restores the exact codeword and reports every
//                 corrupted position — no silent data change, no over- or
//                 under-counting.
//   t < e <= 2t   the pattern is beyond guaranteed correction but within
//                 the design distance, so kNoError is impossible. The
//                 decoder may fail (word must be byte-identical to the
//                 received word) or miscorrect — but a miscorrection must
//                 land on a true codeword AND carry a non-empty correction
//                 list, so the telemetry layer counts it. A "corrected"
//                 word that is not a codeword is the bug this test exists
//                 to catch.
//
// Deterministic: one pinned seed per configuration. CI also runs this
// binary under the asan-ubsan preset, where the allocation-free scratch
// decode path gets bounds- and UB-checked on every pattern.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rs/rs_code.hpp"
#include "util/rng.hpp"

namespace pair_ecc::rs {
namespace {

using pair_ecc::util::Xoshiro256;

struct CodeConfig {
  const char* name;
  unsigned n, k;
};

// Every shape the schemes construct (see pair_config.hpp, duo.cpp,
// ablation.cpp) plus expanded siblings and a deep mother-code shortening.
constexpr CodeConfig kConfigs[] = {
    {"pair2", 34, 32},           // t = 1
    {"pair4", 68, 64},           // t = 2
    {"duo", 76, 64},             // t = 6
    {"pair2-expanded", 66, 64},  // PAIR-2 after one expansion step
    {"pair4-expanded", 132, 128},
    {"deep", 255, 223},          // t = 16, full-length mother code
};

std::vector<Elem> RandomData(const GfField& f, unsigned k, Xoshiro256& rng) {
  std::vector<Elem> d(k);
  for (auto& s : d) s = static_cast<Elem>(rng.UniformBelow(f.Size()));
  return d;
}

// Corrupts `count` distinct random positions with non-zero deltas; returns
// the chosen positions (sorted, courtesy of std::set).
std::vector<unsigned> InjectErrors(const GfField& f, std::vector<Elem>& word,
                                   unsigned count, Xoshiro256& rng) {
  std::set<unsigned> positions;
  while (positions.size() < count)
    positions.insert(static_cast<unsigned>(rng.UniformBelow(word.size())));
  for (unsigned pos : positions)
    word[pos] ^= static_cast<Elem>(1 + rng.UniformBelow(f.Size() - 1));
  return {positions.begin(), positions.end()};
}

TEST(RsProperty, CorrectableErrorsRoundTripExactly) {
  for (const auto& config : kConfigs) {
    SCOPED_TRACE(config.name);
    const RsCode code = RsCode::Gf256(config.n, config.k);
    Xoshiro256 rng(0x5EED0000ull + config.n * 1000 + config.k);
    DecodeScratch scratch;

    for (unsigned round = 0; round < 40; ++round) {
      const auto data = RandomData(code.field(), code.k(), rng);
      const std::vector<Elem> codeword = code.Encode(data);
      const unsigned errors =
          static_cast<unsigned>(rng.UniformBelow(code.t() + 1));

      std::vector<Elem> received = codeword;
      const auto positions =
          InjectErrors(code.field(), received, errors, rng);

      std::vector<Elem> word = received;
      const DecodeStatus status = code.Decode(word, {}, scratch);
      SCOPED_TRACE("round " + std::to_string(round) + " errors " +
                   std::to_string(errors));
      ASSERT_EQ(word, codeword) << "decode did not restore the codeword";
      if (errors == 0) {
        EXPECT_EQ(status, DecodeStatus::kNoError);
        EXPECT_EQ(scratch.NumCorrected(), 0u);
      } else {
        ASSERT_EQ(status, DecodeStatus::kCorrected);
        ASSERT_EQ(scratch.NumCorrected(), errors)
            << "correction count must match the injected pattern";
        std::set<unsigned> reported;
        for (const auto& c : scratch.corrections) reported.insert(c.position);
        EXPECT_EQ(std::vector<unsigned>(reported.begin(), reported.end()),
                  positions);
      }
    }
  }
}

TEST(RsProperty, BeyondTNeverSilentlyMiscorrects) {
  for (const auto& config : kConfigs) {
    SCOPED_TRACE(config.name);
    const RsCode code = RsCode::Gf256(config.n, config.k);
    Xoshiro256 rng(0xBAD0000ull + config.n * 1000 + config.k);
    DecodeScratch scratch;

    for (unsigned round = 0; round < 40; ++round) {
      const auto data = RandomData(code.field(), code.k(), rng);
      const std::vector<Elem> codeword = code.Encode(data);
      // t < e <= 2t: within the design distance, so the received word is
      // never itself a codeword and kNoError is a contract violation.
      const unsigned errors =
          code.t() + 1 +
          static_cast<unsigned>(rng.UniformBelow(code.t() + 1));

      std::vector<Elem> received = codeword;
      InjectErrors(code.field(), received, errors, rng);

      std::vector<Elem> word = received;
      const DecodeStatus status = code.Decode(word, {}, scratch);
      SCOPED_TRACE("round " + std::to_string(round) + " errors " +
                   std::to_string(errors));
      ASSERT_NE(status, DecodeStatus::kNoError)
          << "a pattern within the design distance cannot be a codeword";
      if (status == DecodeStatus::kFailure) {
        // Detected-uncorrectable: the word must be exactly as received so
        // the caller's DUE accounting sees the unmodified data.
        EXPECT_EQ(word, received);
        EXPECT_EQ(scratch.NumCorrected(), 0u);
      } else {
        // Miscorrection is information-theoretically possible, but it must
        // be (a) a real codeword and (b) visibly counted — this is what the
        // telemetry layer's miscorrection counters rely on.
        ASSERT_EQ(status, DecodeStatus::kCorrected);
        EXPECT_TRUE(code.IsCodeword(word))
            << "claimed correction must yield a codeword";
        EXPECT_GT(scratch.NumCorrected(), 0u)
            << "silent miscorrection: corrected with an empty count";
      }
    }
  }
}

TEST(RsProperty, ScratchAndAllocatingDecodesAgree) {
  // The allocation-free scratch path must be observationally identical to
  // the allocating one — same status, same corrections, same output word.
  const RsCode code = RsCode::Gf256(68, 64);
  Xoshiro256 rng(0xA11A5ull);
  DecodeScratch scratch;
  for (unsigned round = 0; round < 60; ++round) {
    const auto data = RandomData(code.field(), code.k(), rng);
    std::vector<Elem> word = code.Encode(data);
    const unsigned errors =
        static_cast<unsigned>(rng.UniformBelow(2 * code.t() + 2));
    InjectErrors(code.field(), word, errors, rng);

    std::vector<Elem> a = word, b = word;
    const DecodeResult alloc = code.Decode(a);
    const DecodeStatus scr = code.Decode(b, {}, scratch);
    ASSERT_EQ(alloc.status, scr) << "round " << round;
    EXPECT_EQ(a, b) << "round " << round;
    EXPECT_EQ(alloc.NumCorrected(), scratch.NumCorrected());
  }
}

}  // namespace
}  // namespace pair_ecc::rs
