// Reliability-engine tests: outcome classification, Monte-Carlo guarantees
// (schemes never fail on patterns inside their correction power), the
// relative ordering of schemes the paper's evaluation rests on, the Poisson
// combiner, and the analytic miscorrection estimates.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "reliability/analytic.hpp"
#include "reliability/monte_carlo.hpp"
#include "util/rng.hpp"

namespace pair_ecc::reliability {
namespace {

using ecc::SchemeKind;
using faults::FaultMix;
using pair_ecc::util::BitVec;

// ---------------------------------------------------------------- Classify

TEST(Classify, MapsAllClaimTruthCombinations) {
  BitVec truth(8);
  truth.Set(3, true);
  BitVec same = truth;
  BitVec wrong = truth;
  wrong.Flip(0);
  EXPECT_EQ(Classify(ecc::Claim::kClean, same, truth), Outcome::kNoError);
  EXPECT_EQ(Classify(ecc::Claim::kClean, wrong, truth),
            Outcome::kSdcUndetected);
  EXPECT_EQ(Classify(ecc::Claim::kCorrected, same, truth), Outcome::kCorrected);
  EXPECT_EQ(Classify(ecc::Claim::kCorrected, wrong, truth),
            Outcome::kSdcMiscorrected);
  EXPECT_EQ(Classify(ecc::Claim::kDetected, wrong, truth), Outcome::kDue);
  EXPECT_EQ(Classify(ecc::Claim::kDetected, same, truth), Outcome::kDue);
}

TEST(Classify, SdcAndFailurePredicates) {
  EXPECT_TRUE(IsSdc(Outcome::kSdcMiscorrected));
  EXPECT_TRUE(IsSdc(Outcome::kSdcUndetected));
  EXPECT_FALSE(IsSdc(Outcome::kDue));
  EXPECT_TRUE(IsFailure(Outcome::kDue));
  EXPECT_FALSE(IsFailure(Outcome::kCorrected));
  EXPECT_FALSE(IsFailure(Outcome::kNoError));
}

TEST(Classify, OutcomeNamesAreDistinct) {
  EXPECT_NE(ToString(Outcome::kSdcMiscorrected), ToString(Outcome::kDue));
  EXPECT_NE(ToString(Outcome::kNoError), ToString(Outcome::kCorrected));
}

// -------------------------------------------------------------- MonteCarlo

ScenarioConfig SmallScenario(SchemeKind scheme, FaultMix mix, unsigned faults,
                             std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.scheme = scheme;
  cfg.mix = mix;
  cfg.faults_per_trial = faults;
  cfg.working_rows = 1;
  cfg.lines_per_row = 4;
  cfg.seed = seed;
  return cfg;
}

TEST(MonteCarlo, CountsAreConsistent) {
  const auto counts =
      RunMonteCarlo(SmallScenario(SchemeKind::kIecc, FaultMix::Inherent(), 1),
                    100);
  EXPECT_EQ(counts.trials, 100u);
  EXPECT_EQ(counts.reads, 400u);
  EXPECT_EQ(counts.no_error + counts.corrected + counts.due +
                counts.sdc_miscorrected + counts.sdc_undetected,
            counts.reads);
  EXPECT_LE(counts.trials_with_sdc, counts.trials);
  EXPECT_LE(counts.trials_with_failure, counts.trials);
  EXPECT_GE(counts.trials_with_failure, counts.trials_with_sdc);
}

TEST(MonteCarlo, IsDeterministicPerSeed) {
  const auto cfg = SmallScenario(SchemeKind::kXed, FaultMix::Inherent(), 2, 9);
  const auto a = RunMonteCarlo(cfg, 60);
  const auto b = RunMonteCarlo(cfg, 60);
  EXPECT_EQ(a.Sdc(), b.Sdc());
  EXPECT_EQ(a.due, b.due);
  EXPECT_EQ(a.corrected, b.corrected);
}

TEST(MonteCarlo, SingleCellFaultNeverDefeatsAnyRealScheme) {
  // Every scheme under test corrects any single-cell fault: zero SDC and
  // zero DUE across trials.
  for (SchemeKind scheme :
       {SchemeKind::kIecc, SchemeKind::kSecDed, SchemeKind::kXed,
        SchemeKind::kDuo, SchemeKind::kPair2, SchemeKind::kPair4,
        SchemeKind::kPair4SecDed}) {
    const auto counts =
        RunMonteCarlo(SmallScenario(scheme, FaultMix::CellOnly(), 1), 150);
    EXPECT_EQ(counts.Sdc(), 0u) << ecc::ToString(scheme);
    EXPECT_EQ(counts.due, 0u) << ecc::ToString(scheme);
  }
}

TEST(MonteCarlo, NoEccTurnsVisibleFaultsIntoSdc) {
  const auto counts =
      RunMonteCarlo(SmallScenario(SchemeKind::kNoEcc, FaultMix::CellOnly(), 4),
                    200);
  EXPECT_GT(counts.Sdc(), 0u);
  EXPECT_EQ(counts.due, 0u);             // nothing is ever detected
  EXPECT_EQ(counts.sdc_miscorrected, 0u);// nothing is ever "corrected"
}

TEST(MonteCarlo, PairBeatsXedOnDistributedFaults) {
  // The abstract's headline direction: with several distributed inherent
  // faults, XED's silent on-die miscorrections produce SDC at orders of
  // magnitude higher rates than PAIR-4.
  const unsigned kTrials = 400;
  const auto xed = RunMonteCarlo(
      SmallScenario(SchemeKind::kXed, FaultMix::Inherent(), 3, 21), kTrials);
  const auto pair = RunMonteCarlo(
      SmallScenario(SchemeKind::kPair4, FaultMix::Inherent(), 3, 21), kTrials);
  EXPECT_GT(xed.trials_with_sdc, 10 * std::max<std::uint64_t>(
                                          pair.trials_with_sdc, 1) -
                                     10);
  EXPECT_GT(xed.trials_with_sdc, 0u);
}

TEST(MonteCarlo, PairConvertsClusteredFaultsToDetections) {
  // Pin/row faults exceed any in-codeword budget; PAIR must turn them into
  // DUE, not SDC.
  const auto pair = RunMonteCarlo(
      SmallScenario(SchemeKind::kPair4, FaultMix::Clustered(), 1, 31), 300);
  EXPECT_GT(pair.due, 0u);
  EXPECT_LT(pair.TrialSdcRate(), 0.02);
}

TEST(MonteCarlo, IeccSdcExceedsIeccSecdedSdc) {
  // Layering rank SEC-DED over conventional IECC strictly helps.
  const auto bare = RunMonteCarlo(
      SmallScenario(SchemeKind::kIecc, FaultMix::Inherent(), 3, 41), 400);
  const auto stacked = RunMonteCarlo(
      SmallScenario(SchemeKind::kIeccSecDed, FaultMix::Inherent(), 3, 41), 400);
  EXPECT_GE(bare.trials_with_sdc, stacked.trials_with_sdc);
  EXPECT_GT(bare.trials_with_sdc, 0u);
}

// ----------------------------------------------------------- CombinePoisson

OutcomeCounts FakeCounts(unsigned trials, unsigned sdc, unsigned due) {
  OutcomeCounts c;
  c.trials = trials;
  c.trials_with_sdc = sdc;
  c.trials_with_due = due;
  c.trials_with_failure = std::min<std::uint64_t>(trials, sdc + due);
  return c;
}

TEST(CombinePoisson, ZeroLambdaGivesZeroRisk) {
  const std::vector<OutcomeCounts> cond = {FakeCounts(100, 50, 10)};
  const auto est = CombinePoisson(cond, 0.0);
  EXPECT_EQ(est.p_sdc, 0.0);
  EXPECT_EQ(est.p_due, 0.0);
}

TEST(CombinePoisson, SingleBucketAbsorbsWholeTail) {
  // With one bucket, P(event) = P(N >= 1) * rate.
  const std::vector<OutcomeCounts> cond = {FakeCounts(100, 50, 0)};
  const double lambda = 0.3;
  const auto est = CombinePoisson(cond, lambda);
  EXPECT_NEAR(est.p_sdc, (1.0 - std::exp(-lambda)) * 0.5, 1e-12);
}

TEST(CombinePoisson, WeightsMatchPoissonPmf) {
  const std::vector<OutcomeCounts> cond = {
      FakeCounts(100, 10, 0),  // N=1: rate 0.1
      FakeCounts(100, 30, 0),  // N=2: rate 0.3
      FakeCounts(100, 80, 0),  // N>=3: rate 0.8 (absorbs tail)
  };
  const double lambda = 1.0;
  const double p1 = std::exp(-1.0);        // P(1) = e^-1
  const double p2 = std::exp(-1.0) / 2.0;  // P(2)
  const double tail = 1.0 - std::exp(-1.0) - p1 - p2;  // P(N>=3)
  const auto est = CombinePoisson(cond, lambda);
  EXPECT_NEAR(est.p_sdc, p1 * 0.1 + p2 * 0.3 + tail * 0.8, 1e-12);
}

TEST(CombinePoisson, MonotoneInLambda) {
  const std::vector<OutcomeCounts> cond = {FakeCounts(100, 20, 5),
                                           FakeCounts(100, 40, 10)};
  double prev = 0.0;
  for (double lambda : {0.01, 0.1, 0.5, 1.0, 2.0}) {
    const auto est = CombinePoisson(cond, lambda);
    EXPECT_GE(est.p_sdc, prev);
    prev = est.p_sdc;
  }
}

// ----------------------------------------------------------------- Analytic

TEST(Analytic, WithinBudgetAlwaysCorrects) {
  const auto code = rs::RsCode::Gf256(68, 64);
  for (unsigned e = 1; e <= code.t(); ++e) {
    const auto b = RsErrorBreakdown(code, e, 300, 5);
    EXPECT_DOUBLE_EQ(b.corrected, 1.0) << e;
    EXPECT_DOUBLE_EQ(b.miscorrected, 0.0) << e;
  }
}

TEST(Analytic, BeyondBudgetMostlyDetects) {
  const auto code = rs::RsCode::Gf256(68, 64);
  const auto b = RsErrorBreakdown(code, code.t() + 1, 2000, 6);
  EXPECT_DOUBLE_EQ(b.corrected, 0.0);
  EXPECT_GT(b.detected, 0.9);
  EXPECT_LT(b.miscorrected, 0.1);
  EXPECT_NEAR(b.corrected + b.miscorrected + b.detected + b.undetected, 1.0,
              1e-12);
}

TEST(Analytic, T1CodeMiscorrectsMoreThanT2OnDoubleErrors) {
  // The reason PAIR-4 is the paper's default over PAIR-2.
  const auto pair2 = rs::RsCode::Gf256(34, 32);
  const auto pair4 = rs::RsCode::Gf256(68, 64);
  const auto b2 = RsErrorBreakdown(pair2, 2, 3000, 7);
  const auto b4 = RsErrorBreakdown(pair4, 2, 3000, 7);
  EXPECT_DOUBLE_EQ(b4.corrected, 1.0);
  EXPECT_GT(b2.miscorrected, 0.02);
  EXPECT_GT(b2.detected, 0.7);
}

TEST(Analytic, RandomWordBoundMatchesHandComputation) {
  // RS(6,4) over GF(16): V_1(6) = 1 + 6*15 = 91; q^2 = 256.
  const rs::RsCode code(gf::GfField::Get(4), 6, 4);
  EXPECT_NEAR(RsRandomWordMiscorrectionBound(code), 91.0 / 256.0, 1e-12);
}

TEST(Analytic, BoundShrinksWithRedundancy) {
  const double loose =
      RsRandomWordMiscorrectionBound(rs::RsCode::Gf256(34, 32));
  const double tight =
      RsRandomWordMiscorrectionBound(rs::RsCode::Gf256(76, 64));
  EXPECT_GT(loose, tight * 100.0);
}

TEST(Analytic, OccupancyMatchesBirthdayParadox) {
  // The classic: 23 people, 365 days, P(shared birthday) = 0.5073.
  EXPECT_NEAR(ProbMaxOccupancyAtLeast(365, 23, 2), 0.5073, 0.0002);
}

TEST(Analytic, OccupancyEdgeCases) {
  EXPECT_EQ(ProbMaxOccupancyAtLeast(10, 1, 2), 0.0);  // one ball can't pair
  EXPECT_EQ(ProbMaxOccupancyAtLeast(10, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ProbMaxOccupancyAtLeast(1, 3, 2), 1.0);  // one bin
  EXPECT_DOUBLE_EQ(ProbMaxOccupancyAtLeast(5, 2, 1), 1.0);  // k=1 trivial
  // Pigeonhole: 11 balls in 10 bins must collide.
  EXPECT_NEAR(ProbMaxOccupancyAtLeast(10, 11, 2), 1.0, 1e-12);
}

TEST(Analytic, OccupancyMatchesBruteForceMonteCarlo) {
  util::Xoshiro256 rng(99);
  for (const auto& [bins, balls, k] :
       {std::tuple<unsigned, unsigned, unsigned>{8, 5, 2},
        {16, 6, 3},
        {64, 10, 2}}) {
    unsigned hits = 0;
    const unsigned trials = 200000;
    for (unsigned t = 0; t < trials; ++t) {
      std::vector<unsigned> occ(bins, 0);
      bool hit = false;
      for (unsigned b = 0; b < balls; ++b)
        hit |= ++occ[rng.UniformBelow(bins)] >= k;
      hits += hit;
    }
    const double mc = static_cast<double>(hits) / trials;
    EXPECT_NEAR(ProbMaxOccupancyAtLeast(bins, balls, k), mc, 0.005)
        << bins << "/" << balls << "/" << k;
  }
}

TEST(Analytic, OverwhelmGapExplainsTheHeadlineRatio) {
  // The F5 scaling argument: at realistic fault counts, IECC needs only a
  // pair in one of its 64 words while PAIR-4 needs a triple in one of its
  // 16 codewords — orders of magnitude apart, widening as faults thin out.
  const auto p4 = CodewordOverwhelmProbability(4);
  EXPECT_GT(p4.iecc, 0.05);
  EXPECT_LT(p4.pair4, 0.02);
  const auto p2 = CodewordOverwhelmProbability(2);
  EXPECT_GT(p2.iecc / std::max(p2.pair4, 1e-300), 30.0);
  // Monotone in fault count.
  EXPECT_GT(p4.iecc, p2.iecc);
  EXPECT_GT(p4.pair4, p2.pair4);
}

TEST(Analytic, HeavyGarbageMiscorrectionApproachesSphereBound) {
  const auto code = rs::RsCode::Gf256(34, 32);
  const auto b = RsErrorBreakdown(code, 20, 4000, 8);
  const double bound = RsRandomWordMiscorrectionBound(code);
  EXPECT_NEAR(b.miscorrected, bound, bound);  // same order of magnitude
  EXPECT_GT(b.miscorrected, bound / 10.0);
}

}  // namespace
}  // namespace pair_ecc::reliability
