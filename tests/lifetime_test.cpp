// Lifetime/scrubbing engine tests: Poisson accumulation, scrub semantics
// per scheme (including PAIR's in-DRAM decode-and-restore), and the
// directional effect of scrub interval on end-of-horizon reliability.
#include <gtest/gtest.h>

#include "core/pair_scheme.hpp"
#include "dram/rank.hpp"
#include "reliability/lifetime.hpp"
#include "util/rng.hpp"

namespace pair_ecc::reliability {
namespace {

using dram::Address;
using dram::Rank;
using dram::RankGeometry;
using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

LifetimeConfig Base(ecc::SchemeKind scheme) {
  LifetimeConfig cfg;
  cfg.scheme = scheme;
  cfg.epochs = 25;
  cfg.faults_per_epoch = 0.2;
  cfg.working_rows = 1;
  cfg.lines_per_row = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(Lifetime, CountsAreConsistent) {
  const auto stats = RunLifetime(Base(ecc::SchemeKind::kIecc), 60);
  EXPECT_EQ(stats.trials, 60u);
  EXPECT_LE(stats.trials_with_sdc, stats.trials);
  EXPECT_LE(stats.mean_sdc_epoch, 25.0);
  EXPECT_GT(stats.mean_sdc_epoch, 0.0);
}

TEST(Lifetime, DeterministicPerSeed) {
  const auto a = RunLifetime(Base(ecc::SchemeKind::kXed), 40);
  const auto b = RunLifetime(Base(ecc::SchemeKind::kXed), 40);
  EXPECT_EQ(a.trials_with_sdc, b.trials_with_sdc);
  EXPECT_EQ(a.total_corrections, b.total_corrections);
}

TEST(Lifetime, ZeroFaultRateMeansNoFailures) {
  auto cfg = Base(ecc::SchemeKind::kIecc);
  cfg.faults_per_epoch = 0.0;
  const auto stats = RunLifetime(cfg, 30);
  EXPECT_EQ(stats.trials_with_sdc, 0u);
  EXPECT_EQ(stats.trials_with_due, 0u);
  EXPECT_EQ(stats.total_corrections, 0u);
}

TEST(Lifetime, MoreFaultsMoreFailures) {
  auto low = Base(ecc::SchemeKind::kIecc);
  low.faults_per_epoch = 0.02;
  auto high = Base(ecc::SchemeKind::kIecc);
  high.faults_per_epoch = 0.5;
  const auto s_low = RunLifetime(low, 100);
  const auto s_high = RunLifetime(high, 100);
  EXPECT_GT(s_high.trials_with_sdc, s_low.trials_with_sdc);
}

TEST(Lifetime, ScrubbingReducesAccumulationSdc) {
  // Cell-only, transient-dominant mix: IECC's SDC path is two cell faults
  // meeting in one 128-bit word, so flushing singles between arrivals must
  // help. (Against single multi-bit faults scrubbing is powerless — the
  // damage SDCs on the demand read of the same epoch.)
  auto never = Base(ecc::SchemeKind::kIecc);
  never.mix = faults::FaultMix::CellOnly();
  never.mix.permanent_fraction = 0.1;
  never.epochs = 40;
  never.faults_per_epoch = 0.5;
  auto often = never;
  often.scrub_interval = 2;
  const auto s_never = RunLifetime(never, 150);
  const auto s_often = RunLifetime(often, 150);
  EXPECT_GT(s_often.total_scrub_writebacks, 0u);
  EXPECT_LT(2 * s_often.trials_with_sdc, s_never.trials_with_sdc);
}

TEST(Lifetime, PairSurvivesWhereIeccAccumulates) {
  auto cfg = Base(ecc::SchemeKind::kIecc);
  cfg.epochs = 40;
  const auto iecc = RunLifetime(cfg, 100);
  cfg.scheme = ecc::SchemeKind::kPair4;
  const auto pair = RunLifetime(cfg, 100);
  EXPECT_GT(iecc.trials_with_sdc, 4 * std::max<std::uint64_t>(pair.trials_with_sdc, 1) - 4);
}

// ------------------------------------------------------- ScrubLine per se

TEST(ScrubLine, DefaultWritebackClearsTransientForIecc) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = ecc::MakeScheme(ecc::SchemeKind::kIecc, rank);
  Xoshiro256 rng(6);
  const Address addr{0, 2, 4};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(1).InjectFlip(0, 2, 4 * 64 + 9);
  scheme->ScrubLine(addr);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, ecc::Claim::kClean);
  EXPECT_EQ(r.data, line);
}

TEST(ScrubLine, PairInDramScrubRestoresParityToo) {
  RankGeometry rg;
  Rank rank(rg);
  core::PairScheme pair(rank, core::PairConfig::Pair4());
  Xoshiro256 rng(7);
  const Address addr{0, 3, 10};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  pair.WriteLine(addr, line);
  rank.device(5).InjectFlip(0, 3, 10 * 64 + 33);
  pair.ScrubLine(addr);
  const auto r = pair.ReadLine(addr);
  EXPECT_EQ(r.claim, ecc::Claim::kClean);  // clean, not merely re-corrected
  EXPECT_EQ(r.data, line);
}

TEST(ScrubLine, WriteOverDirtyCodewordTakesTheSlowPathAndScrubs) {
  // The write path's syndrome check: a pure delta update over a codeword
  // that currently carries an error would migrate the error into the
  // parity and resurrect it as a miscorrection on the next read. The
  // implementation therefore decodes-and-re-encodes dirty codewords, so a
  // write over damage leaves the codeword fully clean.
  RankGeometry rg;
  Rank rank(rg);
  core::PairScheme pair(rank, core::PairConfig::Pair4());
  Xoshiro256 rng(8);
  const Address addr{0, 4, 20};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  pair.WriteLine(addr, line);
  rank.device(2).InjectFlip(0, 4, 20 * 64 + 5);
  const BitVec line2 = BitVec::Random(rg.LineBits(), rng);
  pair.WriteLine(addr, line2);  // write over the damaged codeword
  const auto after = pair.ReadLine(addr);
  EXPECT_EQ(after.claim, ecc::Claim::kClean);
  EXPECT_EQ(after.data, line2);
}

TEST(ScrubLine, SecDedWrapperScrubsBothLevels) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = ecc::MakeScheme(ecc::SchemeKind::kPair4SecDed, rank);
  Xoshiro256 rng(9);
  const Address addr{0, 5, 7};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(0).InjectFlip(0, 5, 7 * 64 + 1);   // data-device damage
  rank.device(8).InjectFlip(0, 5, 7 * 64 + 2);   // rank-parity damage
  scheme->ScrubLine(addr);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, ecc::Claim::kClean);
  EXPECT_EQ(r.data, line);
}

TEST(ScrubLine, StuckDamageSurvivesScrub) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = ecc::MakeScheme(ecc::SchemeKind::kIecc, rank);
  Xoshiro256 rng(10);
  const Address addr{0, 6, 8};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  const unsigned bit = 8 * 64 + 3;
  rank.device(3).SetStuck(0, 6, bit, !line.Get(3 * 64 + 3));
  scheme->ScrubLine(addr);
  // The cell is still stuck: the next read must again see (and fix) it.
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, ecc::Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

}  // namespace
}  // namespace pair_ecc::reliability
