// Telemetry layer contract tests (src/telemetry/ + reliability report
// builders).
//
// Three contracts pinned here:
//  1. Golden schema: the pair-report document layout (section names, order,
//     schema version, per-section field names) is stable — bench_diff and
//     committed baselines depend on it, so renames must fail a test.
//  2. Determinism: every section except "timing" is a pure function of
//     (config, seed, trials) — two runs, and runs at different thread
//     counts, serialise byte-identically with ToJson(false).
//  3. The primitives (JsonValue, Counters, Histogram) behave as their
//     headers document, including the shard-merge semantics the engine
//     relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "reliability/monte_carlo.hpp"
#include "reliability/telemetry.hpp"
#include "telemetry/diff.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

namespace pair_ecc::telemetry {
namespace {

// ---------------------------------------------------------------- JsonValue

TEST(Json, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("zeta", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  obj.Set("alpha", 4);  // replace in place, keep position
  const auto& items = obj.AsObject();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "zeta");
  EXPECT_EQ(items[1].first, "alpha");
  EXPECT_EQ(items[1].second.AsInt(), 4);
  EXPECT_EQ(items[2].first, "mid");
}

TEST(Json, RoundTripPreservesValuesAndIntegerness) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("count", std::int64_t{12345678901234});
  obj.Set("rate", 0.25);
  obj.Set("name", "pair-4");
  obj.Set("flag", true);
  obj.Set("none", JsonValue());
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append(2.5);
  obj.Set("seq", std::move(arr));

  const JsonValue parsed = JsonValue::Parse(obj.Dump());
  EXPECT_EQ(parsed, obj);
  EXPECT_EQ(parsed.Find("count")->kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(parsed.Find("rate")->kind(), JsonValue::Kind::kReal);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::Parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse(""), std::runtime_error);
}

// ----------------------------------------------------------------- Counters

TEST(Counters, MergeIsNameWiseAndOrderIndependent) {
  Counters a, b;
  a.Add("reads", 3);
  a.Add("writes", 1);
  b.Add("writes", 2);
  b.Add("decodes", 7);

  Counters ab = a;
  ab += b;
  Counters ba = b;
  ba += a;
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.Get("reads"), 3u);
  EXPECT_EQ(ab.Get("writes"), 3u);
  EXPECT_EQ(ab.Get("decodes"), 7u);
  EXPECT_EQ(ab.Get("absent"), 0u);
}

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BucketEdgesAreInclusive) {
  Histogram h({2, 5});
  h.Record(0);  // bucket 0 (<= 2)
  h.Record(2);  // bucket 0
  h.Record(3);  // bucket 1 (<= 5)
  h.Record(5);  // bucket 1
  h.Record(6);  // overflow
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.Sum(), 16u);
  EXPECT_EQ(h.TotalCount(), 5u);
}

TEST(Histogram, DefaultConstructedAdoptsBoundsOnMerge) {
  // The engine's shard accumulators are default-constructed; a shard that
  // never recorded must merge as identity.
  Histogram shard = Histogram::UpTo(3);
  shard.Record(1);
  Histogram total;
  total += shard;
  EXPECT_EQ(total, shard);
  total += Histogram();  // empty right-hand side is also identity
  EXPECT_EQ(total, shard);
}

// ---------------------------------------------------------- report builders

reliability::ScenarioConfig TestConfig(unsigned threads) {
  reliability::ScenarioConfig cfg;
  cfg.scheme = ecc::SchemeKind::kPair4;
  cfg.mix = faults::FaultMix::Inherent();
  cfg.faults_per_trial = 2;
  cfg.working_rows = 1;
  cfg.lines_per_row = 4;
  cfg.seed = 0xD5EED;
  cfg.threads = threads;
  return cfg;
}

Report RunAndBuildReport(unsigned threads, unsigned trials = 48) {
  const auto cfg = TestConfig(threads);
  reliability::ScenarioTelemetry tel;
  const reliability::OutcomeCounts counts =
      reliability::RunMonteCarlo(cfg, trials, &tel);
  return reliability::BuildScenarioReport(cfg, trials, counts, tel);
}

TEST(ReportSchema, GoldenTopLevelLayout) {
  const JsonValue doc = RunAndBuildReport(1).ToJson();
  const auto& sections = doc.AsObject();
  // Fixed section order is part of the byte-identity contract.
  const std::vector<std::string> expect = {
      "schema",   "schema_version", "tool",   "meta",
      "counters", "metrics",        "histograms", "tables", "timing"};
  ASSERT_EQ(sections.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(sections[i].first, expect[i]) << "section " << i;

  EXPECT_EQ(doc.Find("schema")->AsString(), kReportSchema);
  EXPECT_EQ(doc.Find("schema_version")->AsInt(), kReportSchemaVersion);
  EXPECT_EQ(doc.Find("tool")->AsString(), "pairsim-reliability");
}

TEST(ReportSchema, GoldenScenarioFieldNames) {
  const JsonValue doc = RunAndBuildReport(1).ToJson();

  for (const char* key : {"scheme", "seed", "trials", "shards",
                          "faults_per_trial", "working_rows", "lines_per_row"})
    EXPECT_NE(doc.Find("meta")->Find(key), nullptr) << "meta." << key;

  for (const char* key :
       {"trials", "reads", "outcome.no_error", "outcome.corrected",
        "outcome.due", "outcome.sdc_miscorrected", "outcome.sdc_undetected",
        "trials_with_sdc", "trials_with_due", "trials_with_failure",
        "codec.writes", "codec.decodes", "codec.claim_clean",
        "codec.claim_corrected", "codec.claim_detected",
        "codec.corrected_units", "codec.scrub_lines", "codec.scrub_rows",
        "codec.devices_erased", "faults.injected", "faults.permanent",
        "faults.transient"})
    EXPECT_NE(doc.Find("counters")->Find(key), nullptr) << "counters." << key;

  for (const char* key :
       {"trial_sdc_rate", "trial_due_rate", "trial_failure_rate"})
    EXPECT_NE(doc.Find("metrics")->Find(key), nullptr) << "metrics." << key;

  const JsonValue* hist =
      doc.Find("histograms")->Find("corrected_units_per_read");
  ASSERT_NE(hist, nullptr);
  EXPECT_NE(hist->Find("bounds"), nullptr);
  EXPECT_NE(hist->Find("counts"), nullptr);
  EXPECT_NE(hist->Find("sum"), nullptr);

  for (const char* key : {"wall_seconds", "trials_per_sec", "workers"})
    EXPECT_NE(doc.Find("timing")->Find(key), nullptr) << "timing." << key;
}

TEST(ReportSchema, ValidatorAcceptsBuiltReportsAndRejectsBrokenOnes) {
  JsonValue doc = RunAndBuildReport(1).ToJson();
  EXPECT_TRUE(ValidateReportSchema(doc).empty());

  JsonValue wrong_schema = doc;
  wrong_schema.Set("schema", "not-a-pair-report");
  EXPECT_FALSE(ValidateReportSchema(wrong_schema).empty());

  JsonValue future_version = doc;
  future_version.Set("schema_version", kReportSchemaVersion + 1);
  EXPECT_FALSE(ValidateReportSchema(future_version).empty());

  EXPECT_FALSE(ValidateReportSchema(JsonValue::Parse("{}")).empty());
  EXPECT_FALSE(ValidateReportSchema(JsonValue::Parse("[1,2]")).empty());
}

TEST(ReportDeterminism, SameSeedSameThreadsIsByteIdentical) {
  const std::string a = RunAndBuildReport(2).ToJson().Dump();
  const std::string b = RunAndBuildReport(2).ToJson().Dump();
  // Full documents (including timing) may differ; everything else may not.
  const std::string a_det =
      RunAndBuildReport(2).ToJson(/*include_timing=*/false).Dump();
  const std::string b_det =
      RunAndBuildReport(2).ToJson(/*include_timing=*/false).Dump();
  EXPECT_EQ(a_det, b_det);
  EXPECT_NE(a_det, a) << "timing section should be present in full dumps";
  (void)b;
}

TEST(ReportDeterminism, ThreadCountDoesNotChangeDeterministicSections) {
  const std::string serial =
      RunAndBuildReport(1).ToJson(/*include_timing=*/false).Dump();
  for (unsigned threads : {2u, 8u}) {
    const std::string parallel =
        RunAndBuildReport(threads).ToJson(/*include_timing=*/false).Dump();
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

// ------------------------------------------------------------- diff library

TEST(Flatten, ProducesDocumentedPaths) {
  Report report("unit-test");
  report.MetaInt("trials", 100);
  report.MetaString("scheme", "pair4");  // non-numeric: not flattened
  report.counters().Add("reads", 7);
  report.AddMetric("sdc_rate", 0.125);
  Histogram h({1, 2});
  h.Record(0);
  h.Record(5);  // beyond the last bound: overflow bucket
  report.AddHistogram("units", h);
  report.AddTiming("wall_seconds", 1.5);

  util::Table table({"scheme", "rate"});
  table.AddRow({"PAIR-4", "0.5"});
  report.AddTable("rates", table);

  const auto flat = FlattenMetrics(report.ToJson());
  auto value_of = [&](const std::string& path) -> double {
    for (const auto& [p, v] : flat)
      if (p == path) return v;
    ADD_FAILURE() << "missing path " << path;
    return -1.0;
  };
  EXPECT_EQ(value_of("meta.trials"), 100.0);
  EXPECT_EQ(value_of("counters.reads"), 7.0);
  EXPECT_EQ(value_of("metrics.sdc_rate"), 0.125);
  EXPECT_EQ(value_of("histograms.units.le_1"), 1.0);
  EXPECT_EQ(value_of("histograms.units.overflow"), 1.0);
  EXPECT_EQ(value_of("histograms.units.sum"), 5.0);
  EXPECT_EQ(value_of("tables.rates.PAIR-4.rate"), 0.5);
  EXPECT_EQ(value_of("timing.wall_seconds"), 1.5);
  for (const auto& [p, v] : flat)
    EXPECT_NE(p, "meta.scheme") << "string meta must not flatten";
}

}  // namespace
}  // namespace pair_ecc::telemetry
