// Cross-scheme behaviour tests: round trips, single-bit correction, the
// characteristic failure modes of each baseline (IECC miscorrection, XED
// silent-miscorrection SDC vs chip-level reconstruction, DUO rank-level RS
// correction), and performance-descriptor sanity.
#include <gtest/gtest.h>

#include "dram/rank.hpp"
#include "ecc/scheme.hpp"
#include "util/rng.hpp"

namespace pair_ecc::ecc {
namespace {

using dram::Address;
using dram::Rank;
using dram::RankGeometry;
using pair_ecc::util::BitVec;
using pair_ecc::util::Xoshiro256;

constexpr SchemeKind kAllKinds[] = {
    SchemeKind::kNoEcc,      SchemeKind::kIecc,   SchemeKind::kSecDed,
    SchemeKind::kIeccSecDed, SchemeKind::kXed,    SchemeKind::kDuo,
    SchemeKind::kPair2,      SchemeKind::kPair4,  SchemeKind::kPair4SecDed,
};

class SchemeParamTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  SchemeParamTest() : rank_(rg_), scheme_(MakeScheme(GetParam(), rank_)) {}

  RankGeometry rg_;
  Rank rank_{rg_};
  std::unique_ptr<Scheme> scheme_;
};

TEST_P(SchemeParamTest, CleanRoundTripAcrossColumns) {
  Xoshiro256 rng(1);
  std::vector<std::pair<Address, BitVec>> lines;
  for (unsigned col : {0u, 1u, 63u, 64u, 127u}) {
    const Address addr{2, 7, col};
    const BitVec line = BitVec::Random(rg_.LineBits(), rng);
    scheme_->WriteLine(addr, line);
    lines.emplace_back(addr, line);
  }
  for (const auto& [addr, line] : lines) {
    const auto r = scheme_->ReadLine(addr);
    EXPECT_EQ(r.claim, Claim::kClean) << ToString(GetParam());
    EXPECT_EQ(r.data, line);
  }
}

TEST_P(SchemeParamTest, OverwriteIsConsistent) {
  Xoshiro256 rng(2);
  const Address addr{0, 3, 10};
  for (int i = 0; i < 5; ++i) scheme_->WriteLine(addr, BitVec::Random(rg_.LineBits(), rng));
  const BitVec last = BitVec::Random(rg_.LineBits(), rng);
  scheme_->WriteLine(addr, last);
  const auto r = scheme_->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kClean);
  EXPECT_EQ(r.data, last);
}

TEST_P(SchemeParamTest, AdjacentLinesDoNotInterfere) {
  // Columns sharing an on-die codeword (0 and 1) must still round-trip
  // independently under interleaved writes.
  Xoshiro256 rng(3);
  const Address a{1, 9, 0}, b{1, 9, 1};
  const BitVec la = BitVec::Random(rg_.LineBits(), rng);
  scheme_->WriteLine(a, la);
  const BitVec lb = BitVec::Random(rg_.LineBits(), rng);
  scheme_->WriteLine(b, lb);
  const BitVec la2 = BitVec::Random(rg_.LineBits(), rng);
  scheme_->WriteLine(a, la2);
  EXPECT_EQ(scheme_->ReadLine(b).data, lb);
  EXPECT_EQ(scheme_->ReadLine(a).data, la2);
}

TEST_P(SchemeParamTest, SingleBitFaultInDataIsCorrected) {
  if (GetParam() == SchemeKind::kNoEcc) GTEST_SKIP();
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Address addr{0, 5, static_cast<unsigned>(trial % 128)};
    const BitVec line = BitVec::Random(rg_.LineBits(), rng);
    scheme_->WriteLine(addr, line);
    // Flip one stored bit inside the addressed column of a random device.
    const unsigned d = static_cast<unsigned>(rng.UniformBelow(8));
    const unsigned bit = addr.col * 64 + static_cast<unsigned>(rng.UniformBelow(64));
    rank_.device(d).InjectFlip(addr.bank, addr.row, bit);
    const auto r = scheme_->ReadLine(addr);
    EXPECT_EQ(r.claim, Claim::kCorrected) << ToString(GetParam());
    EXPECT_EQ(r.data, line) << ToString(GetParam()) << " trial " << trial;
    // Undo so trials stay independent.
    rank_.device(d).InjectFlip(addr.bank, addr.row, bit);
  }
}

TEST_P(SchemeParamTest, SingleBitFaultNeverCausesSdc) {
  if (GetParam() == SchemeKind::kNoEcc) GTEST_SKIP();
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const Address addr{1, 6, 40};
    const BitVec line = BitVec::Random(rg_.LineBits(), rng);
    scheme_->WriteLine(addr, line);
    const unsigned d = static_cast<unsigned>(rng.UniformBelow(8));
    const unsigned bit = static_cast<unsigned>(rng.UniformBelow(8704));
    rank_.device(d).InjectFlip(addr.bank, addr.row, bit);
    const auto r = scheme_->ReadLine(addr);
    if (r.claim != Claim::kDetected) {
      EXPECT_EQ(r.data, line);
    }
    rank_.device(d).InjectFlip(addr.bank, addr.row, bit);
  }
}

TEST_P(SchemeParamTest, BatchEntryPointsMatchPerLineBitwise) {
  // The batch WriteLines/ReadLines path (vectorized for PAIR/DUO/IECC,
  // default loop elsewhere) must be observably identical to the per-line
  // path: same claims, same corrected-unit counts, same delivered data —
  // including under injected faults and overwrites of dirty codewords.
  Xoshiro256 rng(6);
  Rank batch_rank(rg_);
  auto batch_scheme = MakeScheme(GetParam(), batch_rank);

  std::vector<Address> addrs;
  std::vector<BitVec> lines;
  for (unsigned i = 0; i < 12; ++i) {
    addrs.push_back({i % 2, 4 + i % 3, (i * 17) % 128});
    lines.push_back(BitVec::Random(rg_.LineBits(), rng));
  }
  for (std::size_t i = 0; i < addrs.size(); ++i)
    scheme_->WriteLine(addrs[i], lines[i]);
  batch_scheme->WriteLines(addrs, lines);

  // Identical fault soup in both ranks: anywhere in the rows under test,
  // so the mix spans clean, correctable, and uncorrectable lanes.
  for (int f = 0; f < 48; ++f) {
    const Address& a = addrs[rng.UniformBelow(addrs.size())];
    const unsigned d = static_cast<unsigned>(rng.UniformBelow(8));
    const unsigned bit = static_cast<unsigned>(rng.UniformBelow(8704));
    rank_.device(d).InjectFlip(a.bank, a.row, bit);
    batch_rank.device(d).InjectFlip(a.bank, a.row, bit);
  }

  std::vector<ReadResult> batch_results(addrs.size());
  batch_scheme->ReadLines(addrs, batch_results);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const auto r = scheme_->ReadLine(addrs[i]);
    EXPECT_EQ(batch_results[i].claim, r.claim) << ToString(GetParam()) << " line " << i;
    EXPECT_EQ(batch_results[i].corrected_units, r.corrected_units) << ToString(GetParam()) << " line " << i;
    EXPECT_EQ(batch_results[i].data, r.data) << ToString(GetParam()) << " line " << i;
  }

  // Overwrite the still-faulty lines: exercises the dirty-codeword slow
  // write path next to clean delta updates in the same batch.
  for (std::size_t i = 0; i < 4; ++i) {
    lines[i] = BitVec::Random(rg_.LineBits(), rng);
    scheme_->WriteLine(addrs[i], lines[i]);
  }
  batch_scheme->WriteLines(std::span<const Address>(addrs.data(), 4),
                           std::span<const BitVec>(lines.data(), 4));
  batch_scheme->ReadLines(addrs, batch_results);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const auto r = scheme_->ReadLine(addrs[i]);
    EXPECT_EQ(batch_results[i].claim, r.claim) << ToString(GetParam()) << " line " << i;
    EXPECT_EQ(batch_results[i].data, r.data) << ToString(GetParam()) << " line " << i;
  }
  EXPECT_EQ(batch_scheme->counters().writes, scheme_->counters().writes);
  EXPECT_EQ(batch_scheme->counters().decodes, scheme_->counters().decodes);
}

TEST_P(SchemeParamTest, PerfDescriptorIsSane) {
  const PerfDescriptor p = scheme_->Perf();
  EXPECT_GE(p.read_decode_ns, 0.0);
  EXPECT_GE(p.storage_overhead, 0.0);
  EXPECT_LE(p.extra_read_beats, 2u);
  if (GetParam() == SchemeKind::kNoEcc) {
    EXPECT_EQ(p.storage_overhead, 0.0);
    EXPECT_FALSE(p.write_rmw);
  } else {
    EXPECT_GT(p.storage_overhead, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeParamTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& param_info) {
                           std::string n = ToString(param_info.param);
                           for (char& c : n)
                             if (c == '-' || c == '+') c = '_';
                           return n;
                         });

// ------------------------------------------------------------ NoECC baseline

TEST(NoEcc, PassesErrorsThroughSilently) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kNoEcc, rank);
  Xoshiro256 rng(10);
  const Address addr{0, 0, 0};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(3).InjectFlip(0, 0, 5);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kClean);  // blissfully unaware
  EXPECT_NE(r.data, line);            // ... and wrong: SDC by construction
}

// ------------------------------------------------------- IECC miscorrection

TEST(Iecc, DoubleBitInOneWordMiscorrectsOrDetects) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kIecc, rank);
  Xoshiro256 rng(11);
  int miscorrected = 0, detected = 0, delivered_clean = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Address addr{0, 1, 2};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    // Two flips anywhere in the same 128-bit on-die word of device 0 (the
    // word covers columns 2 and 3).
    unsigned a = static_cast<unsigned>(rng.UniformBelow(128));
    unsigned b;
    do { b = static_cast<unsigned>(rng.UniformBelow(128)); } while (b == a);
    rank.device(0).InjectFlip(0, 1, 2 * 64 + a);
    rank.device(0).InjectFlip(0, 1, 2 * 64 + b);
    const auto r = scheme->ReadLine(addr);
    if (r.claim == Claim::kDetected) {
      ++detected;
    } else if (r.data == line) {
      // Miscorrection whose three wrong bits all fall in the buddy column:
      // this line reads clean, the neighbouring one is silently corrupt.
      ++delivered_clean;
    } else {
      ++miscorrected;  // SDC: claims corrected/clean but data is wrong
    }
    // Reset state for the next trial.
    scheme->WriteLine(addr, line);
  }
  EXPECT_GT(miscorrected, 60);    // majority alias to a wrong single-bit fix
  EXPECT_GT(detected, 5);
  EXPECT_LT(delivered_clean, 40);
}

// --------------------------------------------------------------- XED paths

TEST(Xed, DetectedChipErrorIsReconstructedFromXorParity) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kXed, rank);
  Xoshiro256 rng(12);
  int reconstructed = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Address addr{0, 2, 4};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    // Heavy damage across one device's on-die word (columns 4 and 5): flip
    // many bits so the SEC flags uncorrectable with fair odds.
    for (int i = 0; i < 9; ++i)
      rank.device(5).InjectFlip(0, 2, 4 * 64 + static_cast<unsigned>(rng.UniformBelow(128)));
    const auto r = scheme->ReadLine(addr);
    if (r.claim == Claim::kCorrected && r.data == line) ++reconstructed;
    scheme->WriteLine(addr, line);  // reset
  }
  // Whenever the chip signals, RAID-3 reconstruction recovers it exactly.
  EXPECT_GT(reconstructed, 5);
}

TEST(Xed, SilentMiscorrectionCausesSdc) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kXed, rank);
  Xoshiro256 rng(13);
  int sdc = 0, recovered = 0, detected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Address addr{0, 3, 6};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    // Double-bit error inside one on-die word (columns 6 and 7).
    unsigned a = static_cast<unsigned>(rng.UniformBelow(128));
    unsigned b;
    do { b = static_cast<unsigned>(rng.UniformBelow(128)); } while (b == a);
    rank.device(2).InjectFlip(0, 3, 6 * 64 + a);
    rank.device(2).InjectFlip(0, 3, 6 * 64 + b);
    const auto r = scheme->ReadLine(addr);
    if (r.claim == Claim::kDetected) {
      ++detected;
    } else if (r.data == line) {
      ++recovered;
    } else {
      ++sdc;
    }
    scheme->WriteLine(addr, line);
  }
  EXPECT_GT(sdc, 60);        // the weakness PAIR's evaluation quantifies
  EXPECT_GT(recovered, 10);  // flagged cases are reconstructed exactly
  EXPECT_EQ(detected, 0);    // single-chip events never reach 2-chip DUE
}

TEST(Xed, TwoChipsFlaggedIsDetected) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kXed, rank);
  Xoshiro256 rng(14);
  int detected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Address addr{0, 4, 8};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    for (unsigned dev : {1u, 6u})
      for (int i = 0; i < 9; ++i)
        rank.device(dev).InjectFlip(0, 4, 8 * 64 + static_cast<unsigned>(rng.UniformBelow(128)));
    if (scheme->ReadLine(addr).claim == Claim::kDetected) ++detected;
    scheme->WriteLine(addr, line);
  }
  // Both chips must flag in the same read (~0.2^2 per trial): rare but real.
  EXPECT_GT(detected, 4);
}

// ---------------------------------------------------------------- DUO paths

TEST(Duo, CorrectsUpToSixSymbolErrors) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kDuo, rank);
  Xoshiro256 rng(15);
  for (unsigned errors = 1; errors <= 6; ++errors) {
    const Address addr{0, 5, 9};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    // Each flip lands in a distinct device beat => distinct RS symbol.
    for (unsigned e = 0; e < errors; ++e) {
      const unsigned dev = e % 8;
      const unsigned beat = e / 8 + 2 * dev % 8;
      rank.device(dev).InjectFlip(0, 5, 9 * 64 + (beat % 8) * 8 +
                                            static_cast<unsigned>(rng.UniformBelow(8)));
    }
    const auto r = scheme->ReadLine(addr);
    EXPECT_EQ(r.claim, Claim::kCorrected) << errors << " errors";
    EXPECT_EQ(r.data, line) << errors << " errors";
  }
}

TEST(Duo, WholeDeviceRowFaultIsDetectedNotSilent) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kDuo, rank);
  Xoshiro256 rng(16);
  int sdc = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Address addr{0, 6, 11};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    // Corrupt every bit of device 4's column with p=0.5: ~all 8 symbols bad.
    for (unsigned b = 0; b < 64; ++b)
      if (rng.Bernoulli(0.5)) rank.device(4).InjectFlip(0, 6, 11 * 64 + b);
    const auto r = scheme->ReadLine(addr);
    if (r.claim != Claim::kDetected && r.data != line) ++sdc;
    scheme->WriteLine(addr, line);
  }
  EXPECT_EQ(sdc, 0);  // > t errors must not slip through silently
}

TEST(Duo, ParityChipFaultAloneIsCorrectedOrClean) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kDuo, rank);
  Xoshiro256 rng(17);
  const Address addr{0, 7, 12};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(8).InjectFlip(0, 7, 12 * 64 + 3);  // one parity symbol bit
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

// ------------------------------------------------------------ SECDED paths

TEST(SecDed, DoubleBitInOneBeatIsDetected) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kSecDed, rank);
  Xoshiro256 rng(18);
  const Address addr{0, 8, 13};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  // Two bits of beat 0: device 0 pin 0 and device 3 pin 2.
  rank.device(0).InjectFlip(0, 8, 13 * 64 + 0);
  rank.device(3).InjectFlip(0, 8, 13 * 64 + 2);
  EXPECT_EQ(scheme->ReadLine(addr).claim, Claim::kDetected);
}

TEST(SecDed, SingleBitPerBeatAcrossBeatsAllCorrected) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kSecDed, rank);
  Xoshiro256 rng(19);
  const Address addr{0, 9, 14};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  // One flip in each of the 8 beats (different devices).
  for (unsigned beat = 0; beat < 8; ++beat)
    rank.device(beat).InjectFlip(0, 9, 14 * 64 + beat * 8 + 1);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
  EXPECT_EQ(r.corrected_units, 8u);
}

TEST(SecDed, EccChipFaultDoesNotCorruptData) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kSecDed, rank);
  Xoshiro256 rng(20);
  const Address addr{0, 10, 15};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(8).InjectFlip(0, 10, 15 * 64 + 4);  // parity bit of beat 0
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.data, line);
  EXPECT_EQ(r.claim, Claim::kCorrected);
}

// -------------------------------------------------- composed-scheme paths

TEST(IeccSecDed, RankLayerRepairsInnerMiscorrection) {
  // The conventional stack's raison d'etre: when the on-die SEC miscorrects
  // a double-bit error (adding a third wrong bit), the damage inside one
  // device is at most a few bits spread across beats — single-bit per
  // 72-bit rank codeword — and the rank SEC-DED repairs or flags it.
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kIeccSecDed, rank);
  Xoshiro256 rng(30);
  int silent = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const Address addr{0, 11, 2};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    unsigned a = static_cast<unsigned>(rng.UniformBelow(128));
    unsigned b;
    do { b = static_cast<unsigned>(rng.UniformBelow(128)); } while (b == a);
    rank.device(0).InjectFlip(0, 11, 2 * 64 + a);
    rank.device(0).InjectFlip(0, 11, 2 * 64 + b);
    const auto r = scheme->ReadLine(addr);
    if (r.claim != Claim::kDetected && r.data != line) ++silent;
    scheme->WriteLine(addr, line);
  }
  // Bare IECC turns the large majority of these into SDC; the stack must
  // suppress nearly all of it (residue: miscorrections whose extra bits
  // collide in one beat).
  EXPECT_LT(silent, 8);
}

TEST(Xed, ParityChipIsAlsoProtectedOnDie) {
  // A single-bit fault in the XOR chip is corrected by that chip's own
  // on-die SEC during reconstruction, so a flagged data chip still rebuilds
  // exactly.
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kXed, rank);
  Xoshiro256 rng(31);
  int exact = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Address addr{0, 12, 4};
    const BitVec line = BitVec::Random(rg.LineBits(), rng);
    scheme->WriteLine(addr, line);
    // Heavy damage on data chip 1 (to force a flag) + 1 bit in the parity chip.
    for (int i = 0; i < 9; ++i)
      rank.device(1).InjectFlip(0, 12, 4 * 64 + static_cast<unsigned>(rng.UniformBelow(128)));
    rank.device(8).InjectFlip(0, 12, 4 * 64 + 7);
    const auto r = scheme->ReadLine(addr);
    if (r.claim == Claim::kCorrected && r.data == line) ++exact;
    scheme->WriteLine(addr, line);
  }
  EXPECT_GT(exact, 5);  // whenever chip 1 flags, reconstruction is exact
}

TEST(Duo, SpareRegionFaultIsJustAnotherSymbolError) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kDuo, rank);
  Xoshiro256 rng(32);
  const Address addr{0, 13, 6};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  // Corrupt device 2's spare nibble for this column.
  rank.device(2).InjectFlip(0, 13, rg.device.row_bits + 6 * 4 + 1);
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

TEST(Duo, MixedDataAndSpareErrorsWithinBudget) {
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kDuo, rank);
  Xoshiro256 rng(33);
  const Address addr{0, 14, 8};
  const BitVec line = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(addr, line);
  rank.device(0).InjectFlip(0, 14, 8 * 64 + 3);                     // data
  rank.device(8).InjectFlip(0, 14, 8 * 64 + 12);                    // sidecar
  rank.device(5).InjectFlip(0, 14, rg.device.row_bits + 8 * 4 + 0); // spare
  const auto r = scheme->ReadLine(addr);
  EXPECT_EQ(r.claim, Claim::kCorrected);
  EXPECT_EQ(r.data, line);
}

TEST(Iecc, WriteOverLatentErrorCorrectsIt) {
  // Read-correct-modify-write: writing one column of a word repairs a
  // latent single-bit error in the buddy column (assumption [A6]).
  RankGeometry rg;
  Rank rank(rg);
  auto scheme = MakeScheme(SchemeKind::kIecc, rank);
  Xoshiro256 rng(34);
  const Address a{0, 15, 2}, buddy{0, 15, 3};
  const BitVec la = BitVec::Random(rg.LineBits(), rng);
  const BitVec lb = BitVec::Random(rg.LineBits(), rng);
  scheme->WriteLine(a, la);
  scheme->WriteLine(buddy, lb);
  rank.device(4).InjectFlip(0, 15, 3 * 64 + 30);  // latent error at buddy
  scheme->WriteLine(a, la);                       // RMW decodes+restores
  const auto r = scheme->ReadLine(buddy);
  EXPECT_EQ(r.claim, Claim::kClean);
  EXPECT_EQ(r.data, lb);
}

// ---------------------------------------------------- factory and metadata

TEST(SchemeFactory, NamesAreDistinct) {
  RankGeometry rg;
  std::vector<std::string> names;
  for (SchemeKind kind : kAllKinds) {
    Rank rank(rg);
    names.push_back(MakeScheme(kind, rank)->Name());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(SchemeFactory, SidecarSchemesRequireEccDevice) {
  RankGeometry rg;
  rg.ecc_devices = 0;
  Rank rank(rg);
  for (SchemeKind kind : {SchemeKind::kSecDed, SchemeKind::kXed, SchemeKind::kDuo})
    EXPECT_THROW(MakeScheme(kind, rank), std::invalid_argument) << ToString(kind);
  // On-die-only schemes do not need the sidecar.
  EXPECT_NO_THROW(MakeScheme(SchemeKind::kPair4, rank));
  EXPECT_NO_THROW(MakeScheme(SchemeKind::kIecc, rank));
}

TEST(SchemePerf, RelativeShapesMatchTheArchitectures) {
  RankGeometry rg;
  Rank rank(rg);
  const auto iecc = MakeScheme(SchemeKind::kIecc, rank)->Perf();
  const auto xed = MakeScheme(SchemeKind::kXed, rank)->Perf();
  const auto duo = MakeScheme(SchemeKind::kDuo, rank)->Perf();
  const auto pair4 = MakeScheme(SchemeKind::kPair4, rank)->Perf();
  EXPECT_TRUE(iecc.write_rmw);
  EXPECT_TRUE(xed.write_rmw);
  EXPECT_FALSE(duo.write_rmw);
  EXPECT_FALSE(pair4.write_rmw);   // the delta-parity write path
  EXPECT_EQ(duo.extra_read_beats, 1u);
  EXPECT_EQ(pair4.extra_read_beats, 0u);
  EXPECT_NEAR(pair4.storage_overhead, 0.0625, 1e-9);
  EXPECT_NEAR(iecc.storage_overhead, 0.0625, 1e-9);
}

}  // namespace
}  // namespace pair_ecc::ecc
