// End-to-end kill-and-resume determinism against the real pairsim binary
// (path injected as PAIRSIM_BINARY): SIGKILL and SIGTERM land on a live
// campaign process, the rerun resumes from the surviving checkpoint, and
// the final merged report is byte-identical to an uninterrupted run. Also
// covers the CLI-boundary failure modes: corrupted checkpoints and
// malformed --shard specs exit nonzero with a one-line diagnostic.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/atomic_file.hpp"

namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pair_campaign_cli_" + name;
}

/// For files the test itself creates: a checkpoint left by a previous run
/// would be silently resumed (or, if corrupted, rejected) instead of the
/// fresh campaign the test expects.
std::string FreshPath(const std::string& name) {
  const std::string path = TempPath(name);
  unlink(path.c_str());
  return path;
}

bool FileExists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Forks and execs pairsim with stdout+stderr redirected to `log_path`.
pid_t Spawn(const std::vector<std::string>& args,
            const std::string& log_path) {
  static const std::string binary = PAIRSIM_BINARY;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    // A CI-wide PAIR_TRIALS would override the --trials these tests pin.
    unsetenv("PAIR_TRIALS");
    const int fd =
        open(log_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      close(fd);
    }
    execv(binary.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

struct Outcome {
  bool exited = false;    // normal exit (vs signal death)
  int code = -1;          // exit code when exited
  int signal = 0;         // terminating signal otherwise
};

Outcome Wait(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  Outcome out;
  out.exited = WIFEXITED(status);
  if (out.exited) out.code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) out.signal = WTERMSIG(status);
  return out;
}

Outcome RunPairsim(const std::vector<std::string>& args,
            const std::string& log_path) {
  return Wait(Spawn(args, log_path));
}

/// Blocks until `path` exists (the campaign flushed its first checkpoint).
void AwaitFile(const std::string& path) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!FileExists(path)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for " << path;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Flags for a small-but-interruptible reliability campaign: single worker
/// and a checkpoint after every shard, so a signal between the first flush
/// and completion always leaves a resumable file behind.
std::vector<std::string> CampaignArgs(const std::string& checkpoint,
                                      unsigned trials) {
  return {"campaign",   "run",
          "--checkpoint", checkpoint,
          "--trials",   std::to_string(trials),
          "--seed",     "9",
          "--threads",  "1",
          "--checkpoint-every", "1"};
}

std::vector<std::string> WithJson(std::vector<std::string> args,
                                  const std::string& json) {
  args.push_back("--json");
  args.push_back(json);
  return args;
}

constexpr unsigned kTrials = 96;  // 6 shards of 16

TEST(CampaignCli, KillAndResumeIsByteIdentical) {
  // Uninterrupted baseline.
  const std::string base_ck = FreshPath("kill_base_ck.json");
  const std::string base_json = FreshPath("kill_base.json");
  const Outcome base = RunPairsim(WithJson(CampaignArgs(base_ck, kTrials), base_json),
                           TempPath("kill_base.log"));
  ASSERT_TRUE(base.exited);
  ASSERT_EQ(base.code, 0) << ReadAll(TempPath("kill_base.log"));

  // Victim: SIGKILL as soon as the first checkpoint hits disk. SIGKILL is
  // unmaskable — this is the torn-write case AtomicWriteFile exists for.
  const std::string ck = FreshPath("kill_ck.json");
  const pid_t victim =
      Spawn(CampaignArgs(ck, kTrials), TempPath("kill_victim.log"));
  AwaitFile(ck);
  kill(victim, SIGKILL);
  const Outcome died = Wait(victim);
  // Either the kill landed mid-run (signal death) or the campaign won the
  // race and completed; both must resume/no-op to the identical report.
  EXPECT_TRUE(died.signal == SIGKILL || (died.exited && died.code == 0));

  // The checkpoint left behind must be readable and resumable.
  const std::string out_json = FreshPath("kill_out.json");
  const Outcome resumed = RunPairsim(WithJson(CampaignArgs(ck, kTrials), out_json),
                              TempPath("kill_resume.log"));
  ASSERT_TRUE(resumed.exited);
  ASSERT_EQ(resumed.code, 0) << ReadAll(TempPath("kill_resume.log"));

  EXPECT_EQ(ReadAll(out_json), ReadAll(base_json));
  EXPECT_EQ(ReadAll(ck), ReadAll(base_ck));
}

TEST(CampaignCli, SigtermDrainsAndExitsResumable) {
  const std::string base_ck = FreshPath("term_base_ck.json");
  const std::string base_json = FreshPath("term_base.json");
  const Outcome base = RunPairsim(WithJson(CampaignArgs(base_ck, kTrials), base_json),
                           TempPath("term_base.log"));
  ASSERT_TRUE(base.exited);
  ASSERT_EQ(base.code, 0);

  const std::string ck = FreshPath("term_ck.json");
  const pid_t victim =
      Spawn(CampaignArgs(ck, kTrials), TempPath("term_victim.log"));
  AwaitFile(ck);
  kill(victim, SIGTERM);
  const Outcome drained = Wait(victim);
  ASSERT_TRUE(drained.exited) << "SIGTERM must drain, not kill";
  // Exit 3 = "interrupted, resumable"; 0 only if the signal lost the race
  // with completion.
  EXPECT_TRUE(drained.code == 3 || drained.code == 0)
      << "exit " << drained.code << "\n"
      << ReadAll(TempPath("term_victim.log"));
  if (drained.code == 3) {
    const std::string log = ReadAll(TempPath("term_victim.log"));
    EXPECT_NE(log.find("rerun the same command to resume"),
              std::string::npos)
        << log;
  }

  const std::string out_json = FreshPath("term_out.json");
  const Outcome resumed = RunPairsim(WithJson(CampaignArgs(ck, kTrials), out_json),
                              TempPath("term_resume.log"));
  ASSERT_TRUE(resumed.exited);
  ASSERT_EQ(resumed.code, 0) << ReadAll(TempPath("term_resume.log"));
  EXPECT_EQ(ReadAll(out_json), ReadAll(base_json));
}

TEST(CampaignCli, CorruptedCheckpointIsRejectedNotMerged) {
  // Produce a valid completed checkpoint, then corrupt one body byte.
  const std::string ck = FreshPath("corrupt_ck.json");
  ASSERT_EQ(RunPairsim(CampaignArgs(ck, 32), TempPath("corrupt_run.log")).code, 0);
  std::string text = ReadAll(ck);
  const auto at = text.find("\"state\"");
  ASSERT_NE(at, std::string::npos);
  const auto digit = text.find_first_of("123456789", at);
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '1' ? '2' : '1';
  pair_ecc::util::AtomicWriteFile(ck, text);

  // Neither resume nor merge may accept it.
  const Outcome resume = RunPairsim(CampaignArgs(ck, 32), TempPath("corrupt_resume.log"));
  ASSERT_TRUE(resume.exited);
  EXPECT_EQ(resume.code, 1);
  EXPECT_NE(ReadAll(TempPath("corrupt_resume.log")).find("checksum mismatch"),
            std::string::npos);

  const Outcome merge =
      RunPairsim({"campaign", "merge", ck}, TempPath("corrupt_merge.log"));
  ASSERT_TRUE(merge.exited);
  EXPECT_EQ(merge.code, 1);
  EXPECT_NE(ReadAll(TempPath("corrupt_merge.log")).find("checksum mismatch"),
            std::string::npos);
}

TEST(CampaignCli, UsableDiagnosticsForBadInvocations) {
  struct Case {
    std::vector<std::string> args;
    const char* expect;
  };
  const std::vector<Case> cases = {
      {{"campaign", "run", "--checkpoint", TempPath("d1.json"), "--shard",
        "nope"},
       "invalid shard spec"},
      {{"campaign", "run", "--checkpoint", TempPath("d2.json"), "--shard",
        "4/2"},
       "invalid shard spec"},
      {{"campaign", "run", "--trials", "8"},
       "requires --checkpoint"},
      {{"campaign", "run", "--checkpoint", TempPath("d3.json"), "--trials",
        "10k"},
       "invalid non-negative integer '10k'"},
      {{"campaign", "run", "--checkpoint", TempPath("d4.json"), "--mode",
        "system", "--trace", TempPath("no_such_trace.txt")},
       "cannot open"},
      {{"campaign", "merge"}, "no checkpoint files given"},
      {{"campaign", "run", "--checkpoint", TempPath("d5.json"), "--shard",
        "0/2", "--json", TempPath("d5_out.json")},
       "merge"},
  };
  int i = 0;
  for (const Case& c : cases) {
    const std::string log = TempPath("diag" + std::to_string(i++) + ".log");
    const Outcome out = RunPairsim(c.args, log);
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.code, 1) << ReadAll(log);
    const std::string text = ReadAll(log);
    EXPECT_NE(text.find(c.expect), std::string::npos) << text;
    // One-line diagnostic: a single "pairsim: ..." line, no stack spew.
    EXPECT_NE(text.find("pairsim: "), std::string::npos) << text;
  }
}

}  // namespace

#else

TEST(CampaignCli, SkippedOnNonPosix) { GTEST_SKIP(); }

#endif
