// Streaming trace subsystem tests: the chunked parser against the
// whole-trace reader (same requests, same diagnostics, any chunk size),
// byte-source Reset/replay, and transparent gzip decompression behind the
// magic-byte sniffing opener.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "timing/request_source.hpp"
#include "workload/byte_source.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"
#include "workload/trace_stream.hpp"

namespace pair_ecc::workload {
namespace {

// Pulls every request out of a RequestSource.
timing::Trace Drain(timing::RequestSource& source) {
  timing::Trace out;
  timing::Request req;
  while (source.Next(req)) out.push_back(req);
  return out;
}

void ExpectSameTrace(const timing::Trace& a, const timing::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival, b[i].arrival) << "request " << i;
    ASSERT_EQ(a[i].op, b[i].op) << "request " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "request " << i;
    ASSERT_EQ(a[i].rank, b[i].rank) << "request " << i;
  }
}

std::string GeneratedTraceText(unsigned requests, std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.pattern = Pattern::kRandom;
  cfg.num_requests = requests;
  cfg.seed = seed;
  std::stringstream buffer;
  WriteTrace(Generate(cfg), buffer);
  return buffer.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------ ParseTraceLine

TEST(ParseTraceLine, ClassifiesLineKinds) {
  timing::Request req;
  std::string error;
  EXPECT_EQ(ParseTraceLine("", req, error), TraceLineKind::kBlank);
  EXPECT_EQ(ParseTraceLine("   \t", req, error), TraceLineKind::kBlank);
  EXPECT_EQ(ParseTraceLine("# comment", req, error), TraceLineKind::kBlank);
  EXPECT_EQ(ParseTraceLine("12 R 1 2 3", req, error), TraceLineKind::kRequest);
  EXPECT_EQ(req.arrival, 12u);
  EXPECT_EQ(req.op, timing::Op::kRead);
  EXPECT_EQ(req.addr.bank, 1u);
  EXPECT_EQ(req.addr.row, 2u);
  EXPECT_EQ(req.addr.col, 3u);
  EXPECT_EQ(ParseTraceLine("12 R 1 2", req, error), TraceLineKind::kError);
  EXPECT_FALSE(error.empty());
}

TEST(ParseTraceLine, RejectsSignedAndTrailingGarbageNumbers) {
  timing::Request req;
  std::string error;
  EXPECT_EQ(ParseTraceLine("-1 R 0 0 0", req, error), TraceLineKind::kError);
  EXPECT_EQ(ParseTraceLine("+3 R 0 0 0", req, error), TraceLineKind::kError);
  EXPECT_EQ(ParseTraceLine("12x R 0 0 0", req, error), TraceLineKind::kError);
}

// ------------------------------------------------------ StreamingTraceParser

TEST(StreamingTraceParser, MatchesReadTraceAtEveryChunkSize) {
  const std::string text = GeneratedTraceText(400, 11);
  std::stringstream whole(text);
  const timing::Trace expected = ReadTrace(whole);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{4096}}) {
    StreamingTraceParser parser(std::make_unique<MemoryByteSource>(text),
                                "<mem>", chunk);
    ExpectSameTrace(Drain(parser), expected);
  }
}

TEST(StreamingTraceParser, ResetReplaysTheIdenticalSequence) {
  const std::string text = GeneratedTraceText(100, 5);
  StreamingTraceParser parser(std::make_unique<MemoryByteSource>(text),
                              "<mem>", 32);
  const timing::Trace first = Drain(parser);
  parser.Reset();
  ExpectSameTrace(Drain(parser), first);
  EXPECT_EQ(first.size(), 100u);
}

TEST(StreamingTraceParser, AcceptsUnterminatedFinalLine) {
  StreamingTraceParser parser(
      std::make_unique<MemoryByteSource>("0 R 0 0 0\n7 W 1 2 3"), "<mem>", 4);
  const timing::Trace trace = Drain(parser);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].arrival, 7u);
  EXPECT_EQ(trace[1].op, timing::Op::kWrite);
}

TEST(StreamingTraceParser, HandlesCrlfAcrossChunkBoundaries) {
  const std::string text = "10 R 1 2 3\r\n\r\n20 W 4 5 6\r\n";
  for (std::size_t chunk = 1; chunk <= text.size(); ++chunk) {
    StreamingTraceParser parser(std::make_unique<MemoryByteSource>(text),
                                "<mem>", chunk);
    const timing::Trace trace = Drain(parser);
    ASSERT_EQ(trace.size(), 2u) << "chunk " << chunk;
    EXPECT_EQ(trace[1].addr.col, 6u) << "chunk " << chunk;
  }
}

TEST(StreamingTraceParser, DiagnosticsMatchReadTrace) {
  const std::string bad_inputs[] = {
      "0 R 0 0 0\nbogus line\n",       // malformed fields
      "0 R 0 0 0\n5 Q 0 0 0\n",       // unknown op
      "10 R 0 0 0\n5 R 0 0 0\n",      // out-of-order cycles
      "0 R 0 0 0\n1 R 0 0 0 9 9\n",   // trailing token
  };
  for (const std::string& text : bad_inputs) {
    std::string whole_message;
    try {
      std::stringstream in(text);
      ReadTrace(in, "demand.trace");
      FAIL() << "ReadTrace accepted: " << text;
    } catch (const std::runtime_error& e) {
      whole_message = e.what();
    }
    StreamingTraceParser parser(std::make_unique<MemoryByteSource>(text),
                                "demand.trace", 8);
    try {
      Drain(parser);
      FAIL() << "streaming parser accepted: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), whole_message);
    }
  }
}

TEST(StreamingTraceParser, OpensPlainFilesViaSniffingOpener) {
  WorkloadConfig cfg;
  cfg.num_requests = 150;
  cfg.seed = 3;
  const timing::Trace trace = Generate(cfg);
  const std::string path = ::testing::TempDir() + "/pair_stream_plain.txt";
  WriteTraceFile(trace, path);
  EXPECT_FALSE(IsCompressedFile(path));
  const auto parser = OpenTraceStream(path);
  ExpectSameTrace(Drain(*parser), trace);
}

// ------------------------------------------------------------------- gzip

TEST(ByteSource, GzipRoundTripThroughSniffingOpener) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  WorkloadConfig cfg;
  cfg.num_requests = 300;
  cfg.seed = 9;
  const timing::Trace trace = Generate(cfg);
  std::stringstream buffer;
  WriteTrace(trace, buffer);
  const std::string path = ::testing::TempDir() + "/pair_stream_trace.gz";
  GzipWriteFile(path, buffer.str());
  EXPECT_TRUE(IsCompressedFile(path));
  const auto parser = OpenTraceStream(path);
  ExpectSameTrace(Drain(*parser), trace);
  // Reset rewinds through the decompressor too.
  parser->Reset();
  ExpectSameTrace(Drain(*parser), trace);
}

TEST(ByteSource, ConcatenatedGzipMembersDecodeBackToBack) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  // Two members whose cycles continue across the seam, as produced by
  // `cat a.gz b.gz > all.gz`.
  const std::string a_path = ::testing::TempDir() + "/pair_gz_member_a.gz";
  const std::string b_path = ::testing::TempDir() + "/pair_gz_member_b.gz";
  GzipWriteFile(a_path, "0 R 0 0 0\n10 W 1 2 3\n");
  GzipWriteFile(b_path, "20 R 4 5 6\n");
  StreamingTraceParser parser(
      MakeInflateSource(std::make_unique<MemoryByteSource>(
                            ReadFileBytes(a_path) + ReadFileBytes(b_path)),
                        "<mem>"),
      "<mem>", 16);
  const timing::Trace trace = Drain(parser);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[2].arrival, 20u);
}

TEST(ByteSource, TruncatedGzipStreamFailsLoudly) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  const std::string path = ::testing::TempDir() + "/pair_gz_trunc.gz";
  GzipWriteFile(path, GeneratedTraceText(200, 4));
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 20u);
  auto truncated = std::make_unique<MemoryByteSource>(
      bytes.substr(0, bytes.size() / 2));
  StreamingTraceParser parser(MakeInflateSource(std::move(truncated), "<mem>"),
                              "<mem>", 64);
  EXPECT_THROW(Drain(parser), std::runtime_error);
}

TEST(ByteSource, GarbageAfterGzipMagicFailsLoudly) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  std::string bytes = "\x1f\x8b";
  for (int i = 0; i < 64; ++i) bytes.push_back(static_cast<char>(i * 37));
  StreamingTraceParser parser(
      MakeInflateSource(std::make_unique<MemoryByteSource>(bytes), "<mem>"),
      "<mem>", 16);
  EXPECT_THROW(Drain(parser), std::runtime_error);
}

}  // namespace
}  // namespace pair_ecc::workload
